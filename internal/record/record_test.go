package record

import (
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"rtsync/internal/workload"
)

// sampleRecords returns a fixed set of records exercising every encoded
// section: verdicts only, obs with and without params, tallies, timings,
// sim counters, awkward floats.
func sampleRecords() []CellRecord {
	cfg := workload.DefaultConfig(4, 0.7)
	cfg.Seed = 42

	var a CellRecord
	a.Reset("fig12", cfg)
	a.Unit = 7
	a.AddVerdict("ds", true)
	a.AddObs("failed", 0)

	var b CellRecord
	b.Reset("avgeer", cfg)
	b.Unit = 19
	b.AddVerdict("pm", true)
	b.AddObs("pm_ds", 0.1)
	b.AddObsP("eer_ds", 3, 1.25)
	b.AddObsP("eer_ds", 4, 0.3333333333333333)
	b.AddTally("skipped", 0)
	b.AddTally("total", 12)
	b.Timing = &Timing{GenNS: 1234, AnaNS: 56789, SimNS: 101112}
	b.Sim = &SimCounts{Events: 9000, Preempts: 17, Switches: 240, Runs: 3}

	var c CellRecord
	c.Reset("locking", workload.Config{
		Processors: 6, Tasks: 12, SubtasksPerTask: 3, Utilization: 0.55,
		PeriodMin: 100, PeriodMax: 10000, PeriodMean: 2000, TickScale: 1000,
		Seed: -5, RandomPhases: false, GlobalResources: 4, GlobalShare: 0.25,
		CSLenFrac: 0.01,
	})
	c.Unit = 0
	c.AddVerdict("hl", false)
	c.AddVerdict("mpcp", true)
	c.AddObs("mpcp", 1.5)

	return []CellRecord{a, b, c}
}

// TestRoundTrip pins the core contract: decode(encode(r)) re-encodes to the
// identical bytes, and the decoded struct matches the original.
func TestRoundTrip(t *testing.T) {
	for i, r := range sampleRecords() {
		line := r.AppendLine(nil)
		var got CellRecord
		if err := got.UnmarshalLine(bytes.TrimSuffix(line, []byte("\n"))); err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if _, err := got.VerifyHash(nil); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		reline := got.AppendLine(nil)
		if !bytes.Equal(line, reline) {
			t.Fatalf("record %d: re-encode differs:\n %s %s", i, line, reline)
		}
		// Struct equality modulo the Hash field the decode filled in.
		got.Hash = ""
		want := r
		want.Hash = ""
		if !reflect.DeepEqual(normalize(want), normalize(got)) {
			t.Fatalf("record %d: decoded struct differs:\nwant %+v\ngot  %+v", i, want, got)
		}
	}
}

// normalize maps empty slices to nil so reflect.DeepEqual ignores the
// []T{} vs nil distinction the decoder may introduce.
func normalize(r CellRecord) CellRecord {
	if len(r.Verdicts) == 0 {
		r.Verdicts = nil
	}
	if len(r.Obs) == 0 {
		r.Obs = nil
	}
	if len(r.Tallies) == 0 {
		r.Tallies = nil
	}
	return r
}

// TestGoldenSchema fails loudly when the canonical encoding changes without
// a SchemaVersion bump: the committed fixture pins the exact bytes of
// SchemaVersion 1. If this test fails and the change is intentional, bump
// SchemaVersion and regenerate with:
//
//	UPDATE_GOLDEN=1 go test ./internal/record -run TestGoldenSchema
func TestGoldenSchema(t *testing.T) {
	var buf []byte
	for i := range sampleRecords() {
		r := sampleRecords()[i]
		buf = r.AppendLine(buf)
	}
	const path = "testdata/golden.jsonl"
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden fixture missing (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatalf("canonical encoding changed without a SchemaVersion bump.\n"+
			"If intentional: bump record.SchemaVersion, then UPDATE_GOLDEN=1 go test ./internal/record -run TestGoldenSchema\ngot:\n%swant:\n%s", buf, want)
	}
	// The fixture must also still decode and hash-verify.
	rd := NewReader(bytes.NewReader(want))
	rd.Verify = true
	var rec CellRecord
	n := 0
	for {
		ok, err := rd.Next(&rec)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != len(sampleRecords()) {
		t.Fatalf("golden fixture has %d records, want %d", n, len(sampleRecords()))
	}
}

// TestFutureSchemaTolerated pins forward compatibility: a record written by
// a NEWER schema (higher version, unknown fields) still yields its known
// fields, while an unversioned line is rejected.
func TestFutureSchemaTolerated(t *testing.T) {
	line := []byte(`{"schema":99,"study":"fig99","n":4,"u":70,"seed":8,"unit":3,` +
		`"cfg":{"procs":4,"tasks":12,"n":4,"u":0.7,"period_min":100,"period_max":10000,` +
		`"period_mean":2000,"tick":1000,"seed":8,"random_phases":true,"gres":0,"gshare":0,"cslen":0},` +
		`"obs":[{"s":"failed","v":2,"novel_field":true}],"shiny_new_section":{"x":1}}`)
	var rec CellRecord
	if err := rec.UnmarshalLine(line); err != nil {
		t.Fatalf("future-schema record rejected: %v", err)
	}
	if rec.Schema != 99 || rec.Study != "fig99" || rec.N != 4 || rec.UPct != 70 {
		t.Fatalf("known fields lost: %+v", rec)
	}
	if len(rec.Obs) != 1 || rec.Obs[0].Value != 2 {
		t.Fatalf("obs lost: %+v", rec.Obs)
	}

	if err := rec.UnmarshalLine([]byte(`{"study":"fig12"}`)); err == nil {
		t.Fatal("unversioned record accepted")
	}
	if err := rec.UnmarshalLine([]byte(`{"schema":1,`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// TestHashDetectsCorruption flips one byte of a stored line and checks the
// verifying reader refuses it.
func TestHashDetectsCorruption(t *testing.T) {
	r := sampleRecords()[1]
	line := r.AppendLine(nil)

	// Corrupt a value digit ("v":0.1 → "v":0.9) without breaking JSON.
	corrupt := bytes.Replace(line, []byte(`"v":0.1`), []byte(`"v":0.9`), 1)
	if bytes.Equal(corrupt, line) {
		t.Fatal("corruption target not found in encoded line")
	}
	rd := NewReader(bytes.NewReader(corrupt))
	rd.Verify = true
	var rec CellRecord
	if _, err := rd.Next(&rec); err == nil || !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("corrupted record passed verification (err=%v)", err)
	}

	// The untouched line passes.
	rd = NewReader(bytes.NewReader(line))
	rd.Verify = true
	if ok, err := rd.Next(&rec); !ok || err != nil {
		t.Fatalf("clean record failed verification: %v", err)
	}

	// A record without a hash passes vacuously (older/merged stores).
	rec.Hash = ""
	if _, err := rec.VerifyHash(nil); err != nil {
		t.Fatalf("hashless record rejected: %v", err)
	}
}

// TestWriterReader round-trips a stream through Writer and Reader, with
// blank lines interleaved.
func TestWriterReader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := sampleRecords()
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(recs)) {
		t.Fatalf("Count() = %d, want %d", w.Count(), len(recs))
	}

	// Interleave blank lines; the reader must skip them.
	text := strings.ReplaceAll(buf.String(), "\n", "\n\n")
	rd := NewReader(strings.NewReader(text))
	rd.Verify = true
	var rec CellRecord
	var got int
	for {
		ok, err := rd.Next(&rec)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if rec.Study != recs[got].Study || rec.Unit != recs[got].Unit {
			t.Fatalf("record %d: got %s/%d, want %s/%d", got, rec.Study, rec.Unit, recs[got].Study, recs[got].Unit)
		}
		got++
	}
	if got != len(recs) {
		t.Fatalf("read %d records, want %d", got, len(recs))
	}
}

// TestReaderReuseTruncates pins slice reuse in Next: a record with fewer
// sections than its predecessor must not inherit stale entries.
func TestReaderReuseTruncates(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := sampleRecords()
	big, small := recs[1], recs[0] // big has tallies+timing+sim; small has neither
	if err := w.Write(&big); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(&small); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd := NewReader(&buf)
	var rec CellRecord
	for i := 0; i < 2; i++ {
		if ok, err := rd.Next(&rec); !ok || err != nil {
			t.Fatal(ok, err)
		}
	}
	if len(rec.Tallies) != 0 || rec.Timing != nil || rec.Sim != nil {
		t.Fatalf("stale sections survived reuse: %+v", rec)
	}
	if len(rec.Verdicts) != 1 || len(rec.Obs) != 1 {
		t.Fatalf("small record sections wrong: %+v", rec)
	}
}

// TestReaderReuseClearsOmitted pins field-level reuse in Next: when a line
// omits an omitempty field (Obs.Param of zero) at an index where the
// PREVIOUS line had one, encoding/json's backing-array reuse must not let
// the stale value survive — it would re-encode with a phantom "p" and fail
// hash verification. (Regression: variable-length obs layouts across
// records of one study, e.g. short-horizon sweeps where not every task
// completes jobs.)
func TestReaderReuseClearsOmitted(t *testing.T) {
	withP := CellRecord{}
	withP.Reset("avgeer", workload.DefaultConfig(2, 0.5))
	withP.AddObsP("eer_ds", 3, 1.5)
	withP.AddObsP("eer_ds", 7, 2.5)
	withP.AddVerdict("pm", true)
	withoutP := CellRecord{}
	withoutP.Reset("avgeer", workload.DefaultConfig(2, 0.5))
	withoutP.AddObs("pm_ds", 1.25) // same index as withP's p:3 obs, no param
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range []*CellRecord{&withP, &withoutP} {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd := NewReader(&buf)
	rd.Verify = true
	var rec CellRecord
	for i := 0; i < 2; i++ {
		if ok, err := rd.Next(&rec); !ok || err != nil {
			t.Fatalf("record %d: ok=%v err=%v", i, ok, err)
		}
	}
	if rec.Obs[0].Param != 0 {
		t.Fatalf("stale Obs.Param survived reuse: %+v", rec.Obs[0])
	}
	got := rec.AppendLine(nil)
	want := withoutP.AppendLine(nil)
	if !bytes.Equal(got, want) {
		t.Fatalf("re-encode after reuse diverged:\ngot  %swant %s", got, want)
	}
}

// TestCSVWriter pins the long-form layout: header once, one row per
// verdict/obs/tally, params blank when zero.
func TestCSVWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	recs := sampleRecords()
	if err := w.Write(&recs[1]); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	want := []string{
		"study,n,u,seed,unit,kind,name,param,value",
		"avgeer,4,70,42,19,verdict,pm,,1",
		"avgeer,4,70,42,19,obs,pm_ds,,0.1",
		"avgeer,4,70,42,19,obs,eer_ds,3,1.25",
		"avgeer,4,70,42,19,obs,eer_ds,4,0.3333333333333333",
		"avgeer,4,70,42,19,tally,skipped,,0",
		"avgeer,4,70,42,19,tally,total,,12",
	}
	if !reflect.DeepEqual(lines, want) {
		t.Fatalf("long-form CSV differs:\ngot  %q\nwant %q", lines, want)
	}
}

// TestEncodeZeroAlloc asserts the warm encode path — AppendLine into a
// retained buffer — allocates nothing per record.
func TestEncodeZeroAlloc(t *testing.T) {
	r := sampleRecords()[1]
	buf := r.AppendLine(nil) // warm the buffer
	allocs := testing.AllocsPerRun(100, func() {
		buf = r.AppendLine(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("AppendLine allocates %v times per record, want 0", allocs)
	}
}

// TestNonFiniteFloats pins the null encoding for NaN/Inf observations.
func TestNonFiniteFloats(t *testing.T) {
	var r CellRecord
	r.Reset("x", workload.Config{})
	r.AddObs("bad", nan())
	line := r.AppendJSON(nil)
	if !bytes.Contains(line, []byte(`"v":null`)) {
		t.Fatalf("NaN not encoded as null: %s", line)
	}
	if !json.Valid(line) {
		t.Fatalf("invalid JSON: %s", line)
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

// BenchmarkRecordEncode measures the warm AppendLine path (canonical encode
// + SHA-256 content hash) for a representative avgeer record.
func BenchmarkRecordEncode(b *testing.B) {
	r := sampleRecords()[1]
	buf := r.AppendLine(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = r.AppendLine(buf[:0])
	}
}

// BenchmarkRecordDecode measures UnmarshalLine with a reused record.
func BenchmarkRecordDecode(b *testing.B) {
	r := sampleRecords()[1]
	line := bytes.TrimSuffix(r.AppendLine(nil), []byte("\n"))
	var rec CellRecord
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rec.UnmarshalLine(line); err != nil {
			b.Fatal(err)
		}
	}
}
