// Package exhaustive finds the ACTUAL worst-case end-to-end response times
// of tiny systems by enumerating every integer phase assignment and
// simulating each one — the "exhaustive search, which is too time consuming
// to be practical even for small systems" that §2 of the paper contrasts
// with schedulability analysis. For tick-scale systems (Example 2 has a
// 4×6×6 phase space) it is perfectly practical, and it lets the test suite
// measure how tight Algorithm SA/PM and Algorithm SA/DS really are.
package exhaustive

import (
	"fmt"

	"rtsync/internal/model"
	"rtsync/internal/sim"
)

// Options bounds the search.
type Options struct {
	// MaxCombinations caps the phase-space size (product of periods).
	// Zero means the default of 1e6.
	MaxCombinations int64
	// HyperperiodsPerRun sets each simulation's horizon as a multiple of
	// the hyperperiod past the largest phase. Zero means 3.
	HyperperiodsPerRun int64
}

func (o Options) withDefaults() Options {
	if o.MaxCombinations <= 0 {
		o.MaxCombinations = 1_000_000
	}
	if o.HyperperiodsPerRun <= 0 {
		o.HyperperiodsPerRun = 3
	}
	return o
}

// Result carries the search outcome.
type Result struct {
	// WorstEER[i] is the largest EER time task i exhibited over every
	// phase assignment.
	WorstEER []model.Duration
	// WorstPhases[i] is a phase vector achieving WorstEER[i].
	WorstPhases [][]model.Time
	// Combinations is the number of phase vectors simulated.
	Combinations int64
}

// WorstEER enumerates all phase vectors (each task's phase ranging over
// [0, period)) and simulates each with a fresh protocol from mk, returning
// the per-task worst observed EER times. The protocol factory is invoked
// once per phase vector because protocols carry per-run state.
func WorstEER(s *model.System, mk func(*model.System) (sim.Protocol, error), opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("exhaustive: %w", err)
	}
	combos := int64(1)
	for i := range s.Tasks {
		p := int64(s.Tasks[i].Period)
		if combos > opts.MaxCombinations/p {
			return nil, fmt.Errorf("exhaustive: phase space exceeds %d combinations", opts.MaxCombinations)
		}
		combos *= p
	}
	hyper, err := hyperperiod(s)
	if err != nil {
		return nil, err
	}

	res := &Result{
		WorstEER:     make([]model.Duration, len(s.Tasks)),
		WorstPhases:  make([][]model.Time, len(s.Tasks)),
		Combinations: combos,
	}
	phases := make([]model.Time, len(s.Tasks))
	work := s.Clone()
	// One engine serves the whole enumeration; each phase vector resets it
	// in place instead of re-allocating queues and per-subtask state.
	var runner sim.Runner
	for {
		for i := range work.Tasks {
			work.Tasks[i].Phase = phases[i]
		}
		protocol, err := mk(work)
		if err != nil {
			return nil, fmt.Errorf("exhaustive: %w", err)
		}
		maxPhase := work.MaxPhase()
		horizon := maxPhase.Add(hyper.MulSat(opts.HyperperiodsPerRun))
		out, err := runner.Run(work, sim.Config{Protocol: protocol, Horizon: horizon})
		if err != nil {
			return nil, fmt.Errorf("exhaustive: phases %v: %w", phases, err)
		}
		for i := range work.Tasks {
			if eer := out.Metrics.Tasks[i].MaxEER; eer > res.WorstEER[i] {
				res.WorstEER[i] = eer
				res.WorstPhases[i] = append([]model.Time(nil), phases...)
			}
		}
		if !nextPhaseVector(s, phases) {
			break
		}
	}
	return res, nil
}

// nextPhaseVector advances phases odometer-style; false when wrapped.
func nextPhaseVector(s *model.System, phases []model.Time) bool {
	for i := len(phases) - 1; i >= 0; i-- {
		phases[i]++
		if model.Duration(phases[i]) < s.Tasks[i].Period {
			return true
		}
		phases[i] = 0
	}
	return false
}

// hyperperiod returns the least common multiple of all task periods,
// guarding against overflow.
func hyperperiod(s *model.System) (model.Duration, error) {
	l := int64(1)
	for i := range s.Tasks {
		p := int64(s.Tasks[i].Period)
		g := gcd(l, p)
		if l > (int64(model.Infinite)/8)/(p/g) {
			return 0, fmt.Errorf("exhaustive: hyperperiod overflow")
		}
		l = l / g * p
	}
	return model.Duration(l), nil
}

// gcd is Euclid's algorithm on positive ints.
func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
