package exhaustive

import (
	"math/rand"
	"testing"

	"rtsync/internal/analysis"
	"rtsync/internal/model"
	"rtsync/internal/priority"
	"rtsync/internal/sim"
)

func mkDS(*model.System) (sim.Protocol, error) { return sim.NewDS(), nil }

func mkRG(*model.System) (sim.Protocol, error) { return sim.NewRG(), nil }

func mkPM(s *model.System) (sim.Protocol, error) {
	res, err := analysis.AnalyzePM(s, analysis.DefaultOptions())
	if err != nil {
		return nil, err
	}
	b := make(sim.Bounds, len(res.Bounds))
	for i, sb := range res.Bounds {
		id := res.Index.ID(i)
		b[id] = sb.Response
	}
	return sim.NewPM(b), nil
}

// TestExample2ActualWorstCaseDS verifies the central claim of the SA/DS
// erratum analysis: the true worst-case EER of T3 under DS is 8, exactly
// the bound Algorithm IEERT computes (and more than the 7 the paper's
// prose quotes).
func TestExample2ActualWorstCaseDS(t *testing.T) {
	s := model.Example2()
	res, err := WorstEER(s, mkDS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Combinations != 4*6*6 {
		t.Errorf("combinations = %d, want 144", res.Combinations)
	}
	want := []model.Duration{2, 7, 8}
	for i, w := range want {
		if res.WorstEER[i] != w {
			t.Errorf("actual worst EER(T%d) = %v, want %v", i+1, res.WorstEER[i], w)
		}
	}
	// The SA/DS bounds are exactly tight on this system.
	ds, err := analysis.AnalyzeDS(s, analysis.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Tasks {
		if model.Duration(res.WorstEER[i]) != ds.TaskEER[i] {
			t.Errorf("task %d: exhaustive %v vs SA/DS bound %v", i, res.WorstEER[i], ds.TaskEER[i])
		}
	}
}

// TestExample2ActualWorstCaseRG: under RG the actual worst case must
// respect the SA/PM bounds (Theorem 1), and on this system it meets them
// exactly for T2 and T3.
func TestExample2ActualWorstCaseRG(t *testing.T) {
	s := model.Example2()
	res, err := WorstEER(s, mkRG, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := analysis.AnalyzePM(s, analysis.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Tasks {
		if model.Duration(res.WorstEER[i]) > pm.TaskEER[i] {
			t.Errorf("task %d: exhaustive RG worst %v exceeds SA/PM bound %v",
				i, res.WorstEER[i], pm.TaskEER[i])
		}
	}
	if res.WorstEER[1] != 7 {
		t.Errorf("worst EER(T2) under RG = %v, want 7 (bound met exactly)", res.WorstEER[1])
	}
}

// TestBoundsSoundOnRandomTinySystems is the tightness/soundness sweep: on
// random tiny systems, the exhaustive worst case never exceeds the
// analyzed bound for the matching protocol.
func TestBoundsSoundOnRandomTinySystems(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweeps are slow")
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 8; trial++ {
		s := tinySystem(rng)
		pm, err := analysis.AnalyzePM(s, analysis.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		ds, err := analysis.AnalyzeDS(s, analysis.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		pmRunnable := true
		for _, sb := range pm.Bounds {
			if sb.Response.IsInfinite() {
				pmRunnable = false // over-utilized: PM cannot be configured
				break
			}
		}
		cases := []struct {
			name   string
			mk     func(*model.System) (sim.Protocol, error)
			bounds []model.Duration
		}{
			{"DS", mkDS, ds.TaskEER},
			{"RG", mkRG, pm.TaskEER},
		}
		if pmRunnable {
			cases = append(cases, struct {
				name   string
				mk     func(*model.System) (sim.Protocol, error)
				bounds []model.Duration
			}{"PM", mkPM, pm.TaskEER})
		}
		for _, tc := range cases {
			res, err := WorstEER(s, tc.mk, Options{})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, tc.name, err)
			}
			for i := range s.Tasks {
				if tc.bounds[i].IsInfinite() {
					continue
				}
				if model.Duration(res.WorstEER[i]) > tc.bounds[i] {
					t.Errorf("trial %d %s task %d: exhaustive worst %v exceeds bound %v\nsystem: %v",
						trial, tc.name, i, res.WorstEER[i], tc.bounds[i], s)
				}
			}
		}
	}
}

// tinySystem builds a random 2-processor system with tiny periods so the
// phase space stays enumerable.
func tinySystem(rng *rand.Rand) *model.System {
	b := model.NewBuilder()
	p0 := b.AddProcessor("P1")
	p1 := b.AddProcessor("P2")
	periods := []model.Duration{4, 5, 6, 8}
	for i := 0; i < 3; i++ {
		period := periods[rng.Intn(len(periods))]
		tb := b.AddTask("", period, 0)
		n := 1 + rng.Intn(2)
		prev := -1
		for j := 0; j < n; j++ {
			proc := rng.Intn(2)
			if proc == prev {
				proc = 1 - proc
			}
			prev = proc
			tb.Subtask(proc, model.Duration(1+rng.Intn(2)), 0)
		}
		tb.Done()
	}
	s := b.MustBuild()
	if err := priority.Assign(s, priority.ProportionalDeadline); err != nil {
		panic(err)
	}
	if p0 == p1 {
		panic("unreachable")
	}
	return s
}

func TestPhaseSpaceLimit(t *testing.T) {
	b := model.NewBuilder()
	p := b.AddProcessor("P")
	b.AddTask("A", 100000, 0).Subtask(p, 1, 1).Done()
	b.AddTask("B", 100000, 0).Subtask(p, 1, 2).Done()
	s := b.MustBuild()
	if _, err := WorstEER(s, mkDS, Options{MaxCombinations: 1000}); err == nil {
		t.Error("oversized phase space accepted")
	}
}

func TestHyperperiod(t *testing.T) {
	s := model.Example2()
	h, err := hyperperiod(s)
	if err != nil {
		t.Fatal(err)
	}
	if h != 12 { // lcm(4, 6, 6)
		t.Errorf("hyperperiod = %v, want 12", h)
	}
}

func TestGCD(t *testing.T) {
	tests := []struct{ a, b, want int64 }{
		{12, 8, 4}, {8, 12, 4}, {7, 13, 1}, {6, 6, 6}, {1, 5, 1},
	}
	for _, tt := range tests {
		if got := gcd(tt.a, tt.b); got != tt.want {
			t.Errorf("gcd(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestNextPhaseVector(t *testing.T) {
	b := model.NewBuilder()
	p := b.AddProcessor("P")
	q := b.AddProcessor("Q")
	b.AddTask("A", 2, 0).Subtask(p, 1, 1).Done()
	b.AddTask("B", 3, 0).Subtask(q, 1, 1).Done()
	s := b.MustBuild()
	phases := []model.Time{0, 0}
	count := 1
	for nextPhaseVector(s, phases) {
		count++
	}
	if count != 6 {
		t.Errorf("odometer visited %d vectors, want 6", count)
	}
	if phases[0] != 0 || phases[1] != 0 {
		t.Errorf("odometer should wrap to zero, got %v", phases)
	}
}

func TestWorstPhasesRecorded(t *testing.T) {
	s := model.Example2()
	res, err := WorstEER(s, mkDS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Some phase vector achieving T3's worst case must be recorded, and
	// replaying it must reproduce the worst EER.
	phases := res.WorstPhases[2]
	if phases == nil {
		t.Fatal("no phase vector recorded for T3")
	}
	work := s.Clone()
	for i := range work.Tasks {
		work.Tasks[i].Phase = phases[i]
	}
	out, err := sim.Run(work, sim.Config{Protocol: sim.NewDS(), Horizon: work.MaxPhase().Add(12 * 3)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics.Tasks[2].MaxEER != res.WorstEER[2] {
		t.Errorf("replay of worst phases gave %v, want %v",
			out.Metrics.Tasks[2].MaxEER, res.WorstEER[2])
	}
}
