package obs

import (
	"sync"
	"time"
)

// SpanPhase identifies what a recorded span covers. The pipeline phases
// mirror the sweep's per-unit stages (generate / analyze / simulate /
// commit); the remaining phases cover worker lifetimes, engine-level runs,
// batched passes, and the CLI stages of single-run tools.
type SpanPhase uint8

const (
	// SpanWorker is one sweep worker goroutine's whole lifetime.
	SpanWorker SpanPhase = iota
	// SpanUnit is one swept unit end to end (generate through commit).
	SpanUnit
	// SpanGenerate, SpanAnalyze, and SpanSimulate are a unit's pipeline
	// phases; SpanCommit is the ordered-commit turn (view fold + sink
	// write), and SpanTurnstileWait the portion of it spent blocked
	// waiting for earlier units to commit.
	SpanGenerate
	SpanAnalyze
	SpanSimulate
	SpanCommit
	SpanTurnstileWait
	// SpanRun is one engine run (one protocol over one system) — the
	// Runner-level hook nested inside SpanSimulate.
	SpanRun
	// SpanBatchSpan is a batched span handler's whole pass over n units;
	// SpanBatchPass is the single interleaved BatchRunner pass inside it.
	SpanBatchSpan
	SpanBatchPass
	// SpanLoad, SpanValidate, and SpanReport are CLI stages (rtsim).
	SpanLoad
	SpanValidate
	SpanReport
	// NumSpanPhases bounds the enum.
	NumSpanPhases
)

// spanPhaseNames names the phases in enum order for exports and summaries.
var spanPhaseNames = [NumSpanPhases]string{
	"worker", "unit", "generate", "analyze", "simulate", "commit",
	"turnstile-wait", "run", "batch-span", "batch-pass",
	"load", "validate", "report",
}

// String names the phase.
func (p SpanPhase) String() string {
	if p < NumSpanPhases {
		return spanPhaseNames[p]
	}
	return "unknown"
}

// spanRec is one recorded span: 32 bytes, no pointers, appended into a
// worker-private arena. Times are nanoseconds since the tracer's epoch.
type spanRec struct {
	start int64
	dur   int64
	unit  int64 // global sweep unit order, -1 when not unit-scoped
	label int32 // index into the tracer's label table, -1 when unlabeled
	batch int32 // units in a batched span, 0 when not batched
	phase SpanPhase
	_     [3]byte
}

// PipelineTracer records wall-clock spans of the sweep pipeline into
// per-worker arenas and exports the run as Chrome trace-event JSON
// (loadable in ui.perfetto.dev).
//
// The design contract matches the rest of obs: disabled is free (every
// hook is a nil check on a concrete *SpanArena), and enabled stays off the
// turnstile — workers append fixed-size records into retained worker-
// private arenas, so tracing changes no figure output and no record store
// byte. Arenas are merged only at export time, after the sweep drains.
type PipelineTracer struct {
	epoch time.Time

	mu      sync.Mutex
	arenas  []*SpanArena
	labels  []string
	samples []counterSample
}

// counterSample is one sampled point of the sweep-progress counter tracks.
type counterSample struct {
	ts        int64 // ns since epoch
	unitsDone int64
	rate      float64 // units per second
	schedFrac float64 // schedulable / (schedulable + unschedulable)
}

// NewPipelineTracer returns a tracer whose clock starts now.
func NewPipelineTracer() *PipelineTracer {
	return &PipelineTracer{epoch: time.Now()}
}

// Arena returns worker i's span arena, creating it (and any missing lower
// slots) on first use. The same arena is handed back for the same index
// across successive sweeps, so one tracer accumulates a whole multi-study
// run. Safe for concurrent callers; the returned arena is single-writer.
func (t *PipelineTracer) Arena(i int) *SpanArena {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.arenas) <= i {
		t.arenas = append(t.arenas, &SpanArena{epoch: t.epoch})
	}
	return t.arenas[i]
}

// RegisterLabels appends labels to the tracer's label table and returns
// the index of the first: span records refer to labels by base+offset.
// Called once per sweep (not per unit); safe for concurrent callers.
func (t *PipelineTracer) RegisterLabels(labels []string) int32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	base := int32(len(t.labels))
	t.labels = append(t.labels, labels...)
	return base
}

// StartSampler samples sp into the tracer's counter tracks (units/sec,
// schedulable fraction, units done) every interval until the returned stop
// function runs. The sampler reads only SweepProgress atomics, so it never
// perturbs sweep workers.
func (t *PipelineTracer) StartSampler(sp *SweepProgress, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	sample := func() {
		s := sp.Snapshot()
		c := counterSample{ts: t.Clock(), unitsDone: s.UnitsDone, rate: s.SystemsPerSec}
		if n := s.Schedulable + s.Unschedulable; n > 0 {
			c.schedFrac = float64(s.Schedulable) / float64(n)
		}
		t.mu.Lock()
		t.samples = append(t.samples, c)
		t.mu.Unlock()
	}
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				sample()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
			sample() // one final point so the tracks reach the end of the run
		})
	}
}

// Clock returns nanoseconds since the tracer's epoch (monotonic).
func (t *PipelineTracer) Clock() int64 { return time.Since(t.epoch).Nanoseconds() }

// SpanArena is one worker's private span storage: a growing slice of
// fixed-size records written by exactly one goroutine and read only after
// the sweep drains. Recording a span is an append — no locks, no
// formatting, no per-span allocation once the backing array is warm.
type SpanArena struct {
	epoch time.Time
	spans []spanRec
}

// Clock returns nanoseconds since the owning tracer's epoch.
func (a *SpanArena) Clock() int64 { return time.Since(a.epoch).Nanoseconds() }

// Record appends one span covering [start, end] (Clock values). label is a
// RegisterLabels index or -1; unit is the global sweep unit order or -1.
func (a *SpanArena) Record(phase SpanPhase, start, end int64, label int32, unit int64) {
	a.spans = append(a.spans, spanRec{start: start, dur: end - start, unit: unit, label: label, phase: phase})
}

// RecordBatched appends one span additionally tagged with the number of
// sweep units it covered (a batched span handler or interleaved pass).
func (a *SpanArena) RecordBatched(phase SpanPhase, start, end int64, label int32, unit int64, batch int32) {
	a.spans = append(a.spans, spanRec{start: start, dur: end - start, unit: unit, label: label, batch: batch, phase: phase})
}

// Len returns the number of recorded spans.
func (a *SpanArena) Len() int { return len(a.spans) }

// SpanPhaseSummary aggregates one phase across every arena.
type SpanPhaseSummary struct {
	Phase   string `json:"phase"`
	Count   int64  `json:"count"`
	TotalNS int64  `json:"total_ns"`
	MaxNS   int64  `json:"max_ns"`
}

// SpanSummary is the compact "where did the time go" digest embedded in
// run manifests: per-phase span counts with total and maximum wall time.
// The turnstile-wait phase totals the time workers spent blocked on the
// ordered-commit turnstile.
type SpanSummary struct {
	Spans  int64              `json:"spans"`
	Phases []SpanPhaseSummary `json:"phases,omitempty"`
}

// Summary folds every arena into per-phase totals. Call after the sweep
// drains (arenas are read without synchronization).
func (t *PipelineTracer) Summary() SpanSummary {
	t.mu.Lock()
	arenas := t.arenas
	t.mu.Unlock()
	var count, total, max [NumSpanPhases]int64
	var s SpanSummary
	for _, a := range arenas {
		s.Spans += int64(len(a.spans))
		for i := range a.spans {
			r := &a.spans[i]
			count[r.phase]++
			total[r.phase] += r.dur
			if r.dur > max[r.phase] {
				max[r.phase] = r.dur
			}
		}
	}
	for p := SpanPhase(0); p < NumSpanPhases; p++ {
		if count[p] == 0 {
			continue
		}
		s.Phases = append(s.Phases, SpanPhaseSummary{
			Phase:   p.String(),
			Count:   count[p],
			TotalNS: total[p],
			MaxNS:   max[p],
		})
	}
	return s
}
