package obs

import (
	"expvar"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Published variable names on /debug/vars. The targets behind them are
// swappable (see publishVars), so successive runs in one process — tests,
// mainly — re-point the same expvar names instead of tripping expvar's
// duplicate-publish panic.
const (
	simVarName      = "rtsync_sim"
	sweepVarName    = "rtsync_sweep"
	analysisVarName = "rtsync_analysis"
)

var (
	pubMu        sync.Mutex
	pubPublished bool
	pubSim       atomic.Pointer[SimStats]
	pubSweep     atomic.Pointer[SweepProgress]
	pubAnalysis  atomic.Pointer[AnalysisStats]
)

// PublishSimStats exposes st's snapshot as the expvar "rtsync_sim".
func PublishSimStats(st *SimStats) {
	pubSim.Store(st)
	publishVars()
}

// PublishSweepProgress exposes sp's snapshot as the expvar "rtsync_sweep".
func PublishSweepProgress(sp *SweepProgress) {
	pubSweep.Store(sp)
	publishVars()
}

// PublishAnalysisStats exposes st's snapshot as the expvar
// "rtsync_analysis".
func PublishAnalysisStats(st *AnalysisStats) {
	pubAnalysis.Store(st)
	publishVars()
}

// publishVars registers the expvar funcs exactly once per process; the
// funcs indirect through atomic pointers so later publishes just swap the
// target.
func publishVars() {
	pubMu.Lock()
	defer pubMu.Unlock()
	if pubPublished {
		return
	}
	pubPublished = true
	expvar.Publish(simVarName, expvar.Func(func() any {
		if s := pubSim.Load(); s != nil {
			return s.Snapshot()
		}
		return nil
	}))
	expvar.Publish(sweepVarName, expvar.Func(func() any {
		if s := pubSweep.Load(); s != nil {
			return s.Snapshot()
		}
		return nil
	}))
	expvar.Publish(analysisVarName, expvar.Func(func() any {
		if s := pubAnalysis.Load(); s != nil {
			return s.Snapshot()
		}
		return nil
	}))
}

// DebugServer is the live debug endpoint: net/http/pprof handlers plus the
// expvar dump (which includes the published counter snapshots) on a
// dedicated listener, so a long sweep can be profiled and inspected
// mid-flight without touching the tool's stdout.
type DebugServer struct {
	// Addr is the bound address, with the real port when ":0" was asked.
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// ServeDebug starts the debug endpoint on addr ("host:port"; port 0 picks
// a free one) and serves until Close. Routes: /debug/pprof/...,
// /debug/vars, and Prometheus text-format /metrics.
func ServeDebug(addr string) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", metricsHandler)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go d.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return d, nil
}

// Close stops the server and releases the listener.
func (d *DebugServer) Close() {
	if d == nil {
		return
	}
	d.srv.Close()
}
