package obs

// NumEventOps mirrors the simulator's event-op enum (completion, timer,
// release, first-release, func, segment). sim pins the correspondence with
// a compile-time assertion so the two cannot drift silently.
const NumEventOps = 6

// eventOpNames names the ops in enum order for snapshots.
var eventOpNames = [NumEventOps]string{
	"completion", "timer", "release", "first_release", "func", "segment",
}

// MaxProcs bounds the per-processor counter bank. Processors beyond the
// bank accumulate into the last slot; the paper's systems use 4, so the
// clamp never bites in practice.
const MaxProcs = 32

// SimStats collects engine counters across one or more simulation runs.
// It is shared state: a sweep attaches one SimStats to every worker's
// engine, so all fields are padded atomics. The engine guards every hook
// with a nil check on the concrete *SimStats — a nil SimStats costs one
// predictable branch per hook and nothing else.
type SimStats struct {
	events          [NumEventOps]Counter
	preemptions     Counter
	contextSwitches Counter
	rgStalls        Counter
	queueHighWater  Counter
	cascades        Counter
	runs            Counter
	idle            [MaxProcs]Counter
	stall           Histogram

	lockAcquisitions Counter
	lockSuspensions  Counter
	priorityBoosts   Counter
	lockStall        Histogram

	batchPasses        Counter
	batchLanes         Counter
	batchLaneHighWater Counter
}

// NewSimStats returns a zeroed counter bank.
func NewSimStats() *SimStats { return &SimStats{} }

// CountEvent counts one popped event of the given op (out-of-range ops are
// dropped rather than corrupting a neighbour).
func (s *SimStats) CountEvent(op int) {
	if uint(op) < NumEventOps {
		s.events[op].Inc()
	}
}

// NotePreemption counts one job displaced from its processor.
func (s *SimStats) NotePreemption() { s.preemptions.Inc() }

// NoteContextSwitch counts one dispatch (a job taking a processor).
func (s *SimStats) NoteContextSwitch() { s.contextSwitches.Inc() }

// NoteRGStall records a synchronization signal that the Release Guard held
// for ticks > 0 before releasing the successor.
func (s *SimStats) NoteRGStall(ticks int64) {
	s.rgStalls.Inc()
	s.stall.Observe(ticks)
}

// NoteLockAcquisition counts one critical-section entry (local or global).
func (s *SimStats) NoteLockAcquisition() { s.lockAcquisitions.Inc() }

// NoteLockSuspension records a job suspended on a busy global resource for
// ticks >= 0 before its request was granted.
func (s *SimStats) NoteLockSuspension(ticks int64) {
	s.lockSuspensions.Inc()
	s.lockStall.Observe(ticks)
}

// NotePriorityBoost counts one priority-boost activation: a critical
// section raising its holder above its base priority.
func (s *SimStats) NotePriorityBoost() { s.priorityBoosts.Inc() }

// ObserveQueueDepth raises the event-queue occupancy high-water mark (the
// heap's depth, or the wheel's resident event count).
func (s *SimStats) ObserveQueueDepth(depth int64) { s.queueHighWater.Max(depth) }

// AddCascades charges n timing-wheel bucket redistributions — the wheel's
// amortized re-sort work; always zero under the heap queue.
func (s *SimStats) AddCascades(n int64) { s.cascades.Add(n) }

// AddIdle charges ticks of idle time to processor p (clamped into the
// fixed bank).
func (s *SimStats) AddIdle(p int, ticks int64) {
	if p >= MaxProcs {
		p = MaxProcs - 1
	}
	if p >= 0 {
		s.idle[p].Add(ticks)
	}
}

// NoteBatch records one interleaved batch pass over lanes systems: pass
// count, lane-fill sum (average occupancy = lanes/passes), and the widest
// pass seen. Single-system runs never touch these.
func (s *SimStats) NoteBatch(lanes int64) {
	s.batchPasses.Inc()
	s.batchLanes.Add(lanes)
	s.batchLaneHighWater.Max(lanes)
}

// NoteRun counts one completed simulation run.
func (s *SimStats) NoteRun() { s.runs.Inc() }

// Runs returns the number of completed runs so far.
func (s *SimStats) Runs() int64 { return s.runs.Load() }

// SimSnapshot is a point-in-time plain-value view of a SimStats, shaped
// for JSON (manifests, the expvar endpoint) and tests.
type SimSnapshot struct {
	// EventsByOp maps event-op name to pop count.
	EventsByOp map[string]int64 `json:"events_by_op"`
	// EventsTotal sums EventsByOp.
	EventsTotal int64 `json:"events_total"`
	// Preemptions counts jobs displaced mid-execution.
	Preemptions int64 `json:"preemptions"`
	// ContextSwitches counts dispatches.
	ContextSwitches int64 `json:"context_switches"`
	// ReleaseGuardStalls counts signals the RG protocol held past their
	// arrival; StallTicks is the distribution of hold durations.
	ReleaseGuardStalls int64              `json:"release_guard_stalls"`
	StallTicks         *HistogramSnapshot `json:"stall_ticks,omitempty"`
	// EventQueueHighWater is the deepest the event queue ever got
	// (wheel occupancy or heap depth, whichever implementation ran).
	EventQueueHighWater int64 `json:"event_queue_high_water"`
	// WheelCascades counts timing-wheel bucket redistributions; zero
	// when runs used the binary-heap queue.
	WheelCascades int64 `json:"wheel_cascades"`
	// Runs counts completed simulation runs.
	Runs int64 `json:"runs"`
	// IdleTicksPerProc is idle time per processor index, trimmed of
	// trailing unused slots.
	IdleTicksPerProc []int64 `json:"idle_ticks_per_proc,omitempty"`
	// LockAcquisitions counts critical-section entries (local or global);
	// PriorityBoosts counts the subset that raised the holder above its
	// base priority.
	LockAcquisitions int64 `json:"lock_acquisitions,omitempty"`
	PriorityBoosts   int64 `json:"priority_boosts,omitempty"`
	// LockSuspensions counts jobs suspended on a busy global resource;
	// LockStallTicks is the distribution of suspension durations.
	LockSuspensions int64              `json:"lock_suspensions,omitempty"`
	LockStallTicks  *HistogramSnapshot `json:"lock_stall_ticks,omitempty"`
	// BatchPasses counts interleaved batch-engine passes; BatchLanes sums
	// the systems simulated across them (average fill =
	// BatchLanes/BatchPasses) and BatchLaneHighWater is the widest pass.
	// All zero for single-system runs.
	BatchPasses        int64 `json:"batch_passes,omitempty"`
	BatchLanes         int64 `json:"batch_lanes,omitempty"`
	BatchLaneHighWater int64 `json:"batch_lane_high_water,omitempty"`
}

// Snapshot captures the current counter values. Concurrent writers may
// advance counters between loads; each individual value is exact.
func (s *SimStats) Snapshot() SimSnapshot {
	snap := SimSnapshot{
		EventsByOp:          make(map[string]int64, NumEventOps),
		Preemptions:         s.preemptions.Load(),
		ContextSwitches:     s.contextSwitches.Load(),
		ReleaseGuardStalls:  s.rgStalls.Load(),
		EventQueueHighWater: s.queueHighWater.Load(),
		WheelCascades:       s.cascades.Load(),
		Runs:                s.runs.Load(),
	}
	for op, name := range eventOpNames {
		n := s.events[op].Load()
		snap.EventsByOp[name] = n
		snap.EventsTotal += n
	}
	if snap.ReleaseGuardStalls > 0 {
		h := s.stall.Snapshot()
		snap.StallTicks = &h
	}
	snap.LockAcquisitions = s.lockAcquisitions.Load()
	snap.PriorityBoosts = s.priorityBoosts.Load()
	snap.LockSuspensions = s.lockSuspensions.Load()
	snap.BatchPasses = s.batchPasses.Load()
	snap.BatchLanes = s.batchLanes.Load()
	snap.BatchLaneHighWater = s.batchLaneHighWater.Load()
	if snap.LockSuspensions > 0 {
		h := s.lockStall.Snapshot()
		snap.LockStallTicks = &h
	}
	last := -1
	for p := 0; p < MaxProcs; p++ {
		if s.idle[p].Load() != 0 {
			last = p
		}
	}
	if last >= 0 {
		snap.IdleTicksPerProc = make([]int64, last+1)
		for p := 0; p <= last; p++ {
			snap.IdleTicksPerProc[p] = s.idle[p].Load()
		}
	}
	return snap
}
