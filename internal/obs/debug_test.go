package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
)

// TestDebugEndpoint serves the live endpoint on an ephemeral port and checks
// that the published counter snapshots and the pprof handlers answer.
func TestDebugEndpoint(t *testing.T) {
	st := NewSimStats()
	st.NoteRun()
	PublishSimStats(st)
	sp := NewSweepProgress()
	sp.StartSweep([]string{"(3,50)"}, 2, 1).Shard(0).NoteSchedulable(true)
	PublishSweepProgress(sp)

	d, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	get := func(path string) []byte {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", d.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	var vars struct {
		Sim   *SimSnapshot   `json:"rtsync_sim"`
		Sweep *SweepSnapshot `json:"rtsync_sweep"`
	}
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if vars.Sim == nil || vars.Sim.Runs != 1 {
		t.Errorf("rtsync_sim = %+v, want runs=1", vars.Sim)
	}
	if vars.Sweep == nil || vars.Sweep.Schedulable != 1 {
		t.Errorf("rtsync_sweep = %+v, want schedulable=1", vars.Sweep)
	}
	if len(get("/debug/pprof/cmdline")) == 0 {
		t.Error("pprof cmdline empty")
	}

	// Re-publishing swaps the snapshot target without panicking on expvar's
	// duplicate-name check, and the endpoint reflects the new target.
	st2 := NewSimStats()
	st2.NoteRun()
	st2.NoteRun()
	PublishSimStats(st2)
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatal(err)
	}
	if vars.Sim == nil || vars.Sim.Runs != 2 {
		t.Errorf("after republish rtsync_sim = %+v, want runs=2", vars.Sim)
	}

	d.Close() // idempotent with the deferred Close

	// A second server after Close binds cleanly (fresh ephemeral port).
	d2, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d2.Close()

	var nilServer *DebugServer
	nilServer.Close() // nil-safe for tools that never enabled -debug-addr
}
