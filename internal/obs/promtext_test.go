package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promSampleLine matches one exposition-format sample: metric name,
// optional single-label set, and an integer or float value.
var promSampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [-+0-9.eE]+(Inf|NaN)?$`)

// checkPromText validates text against the 0.0.4 exposition format line by
// line: every sample parses, every sample's metric has a preceding # TYPE,
// and histograms carry le buckets ending at +Inf with _sum and _count.
func checkPromText(t *testing.T, text string) map[string]string {
	t.Helper()
	types := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			types[f[2]] = f[3]
			continue
		}
		if !promSampleLine.MatchString(line) {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && types[strings.TrimSuffix(name, suf)] == "histogram" {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if _, ok := types[base]; !ok {
			t.Errorf("sample %q has no preceding # TYPE", name)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return types
}

func TestWritePromText(t *testing.T) {
	st := NewSimStats()
	st.NoteRun()
	st.NoteRun()
	st.CountEvent(0)
	st.NotePreemption()
	st.NoteContextSwitch()
	st.NoteRGStall(5)    // log2 bucket 3 (le "7")
	st.NoteRGStall(1000) // log2 bucket 10 (le "1023")
	st.NoteLockAcquisition()
	st.NoteLockSuspension(12)
	st.NotePriorityBoost()
	st.ObserveQueueDepth(17)
	st.AddCascades(3)
	st.AddIdle(1, 42)
	st.NoteBatch(8)

	sp := NewSweepProgress()
	run := sp.StartSweep([]string{"(3,50)", "(5,70)"}, 2, 1)
	sh := run.Shard(0)
	sh.UnitDone(0, 2*time.Millisecond)
	sh.NoteSchedulable(true)
	sh.NoteSchedulable(false)

	an := NewAnalysisStats()
	an.ObserveFixpoint(3, false) // log2 bucket 2 (le "3")
	an.ObserveFixpoint(1, true)  // warm seed, le "1"
	an.ObserveOuter(6)
	an.NoteCacheHit()
	an.NoteCacheHit()
	an.NoteCacheMiss()
	an.NoteCacheEviction()
	an.NoteDelta(1, 3, 24, 72)

	var buf bytes.Buffer
	if err := WritePromText(&buf, st, sp, an); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	types := checkPromText(t, text)

	for name, typ := range map[string]string{
		"rtsync_sim_runs_total":                       "counter",
		"rtsync_sim_preemptions_total":                "counter",
		"rtsync_sim_event_queue_high_water":           "gauge",
		"rtsync_sim_stall_ticks":                      "histogram",
		"rtsync_sim_lock_stall_ticks":                 "histogram",
		"rtsync_sweep_units_done":                     "gauge",
		"rtsync_sweep_schedulable_total":              "counter",
		"rtsync_sweep_cell_units":                     "gauge",
		"rtsync_analysis_cache_hits_total":            "counter",
		"rtsync_analysis_dirty_proc_recomputes_total": "counter",
		"rtsync_analysis_fixpoint_iters":              "histogram",
		"rtsync_analysis_outer_iters":                 "histogram",
	} {
		if got := types[name]; got != typ {
			t.Errorf("metric %s has type %q, want %q", name, got, typ)
		}
	}
	for _, want := range []string{
		"rtsync_sim_runs_total 2\n",
		"rtsync_sim_event_queue_high_water 17\n",
		`rtsync_sim_idle_ticks_total{proc="1"} 42` + "\n",
		// Cumulative le buckets: the 5-tick stall enters at le="7", the
		// 1000-tick one at le="1023"; +Inf sees both; sum and count exact.
		`rtsync_sim_stall_ticks_bucket{le="7"} 1` + "\n",
		`rtsync_sim_stall_ticks_bucket{le="511"} 1` + "\n",
		`rtsync_sim_stall_ticks_bucket{le="1023"} 2` + "\n",
		`rtsync_sim_stall_ticks_bucket{le="+Inf"} 2` + "\n",
		"rtsync_sim_stall_ticks_sum 1005\n",
		"rtsync_sim_stall_ticks_count 2\n",
		"rtsync_sweep_units_done 1\n",
		"rtsync_sweep_schedulable_total 1\n",
		"rtsync_sweep_unschedulable_total 1\n",
		`rtsync_sweep_cell_units{cell="(3,50)"} 1` + "\n",
		"rtsync_analysis_warm_solves_total 1\n",
		"rtsync_analysis_cache_hits_total 2\n",
		"rtsync_analysis_cache_misses_total 1\n",
		"rtsync_analysis_cache_evictions_total 1\n",
		"rtsync_analysis_delta_analyses_total 1\n",
		"rtsync_analysis_dirty_proc_recomputes_total 1\n",
		"rtsync_analysis_clean_proc_reuses_total 3\n",
		"rtsync_analysis_subtasks_recomputed_total 24\n",
		"rtsync_analysis_subtasks_reused_total 72\n",
		// The 3-evaluation solve lands at le="3", the warm 1-evaluation
		// one at le="1"; sum and count exact.
		`rtsync_analysis_fixpoint_iters_bucket{le="1"} 1` + "\n",
		`rtsync_analysis_fixpoint_iters_bucket{le="3"} 2` + "\n",
		"rtsync_analysis_fixpoint_iters_sum 4\n",
		"rtsync_analysis_fixpoint_iters_count 2\n",
		`rtsync_analysis_outer_iters_bucket{le="7"} 1` + "\n",
		"rtsync_analysis_outer_iters_count 1\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestWritePromTextNil checks every source is optional: a nil SimStats,
// SweepProgress or AnalysisStats just omits its families.
func TestWritePromTextNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePromText(&buf, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil sources produced output: %q", buf.String())
	}
	buf.Reset()
	if err := WritePromText(&buf, NewSimStats(), nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rtsync_sim_runs_total 0") {
		t.Error("sim-only output missing sim metrics")
	}
	if strings.Contains(buf.String(), "rtsync_sweep_") {
		t.Error("sim-only output contains sweep metrics")
	}
	if strings.Contains(buf.String(), "rtsync_analysis_") {
		t.Error("sim-only output contains analysis metrics")
	}
	buf.Reset()
	if err := WritePromText(&buf, nil, nil, NewAnalysisStats()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rtsync_analysis_cache_hits_total 0") {
		t.Error("analysis-only output missing analysis metrics")
	}
}

// TestHistogramBucketBounds pins the log2 → le mapping at the edges: value
// 0 lands in le="0", value 1 in le="1", and a value past the last finite
// bucket only in +Inf.
func TestHistogramBucketBounds(t *testing.T) {
	st := NewSimStats()
	st.NoteRGStall(0)
	st.NoteRGStall(1)
	st.NoteRGStall(1 << 40) // overflow bucket
	var buf bytes.Buffer
	if err := WritePromText(&buf, st, nil, nil); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	last := int64(1)<<uint(HistBuckets-2) - 1
	for _, want := range []string{
		`rtsync_sim_stall_ticks_bucket{le="0"} 1` + "\n",
		`rtsync_sim_stall_ticks_bucket{le="1"} 2` + "\n",
		fmt.Sprintf("rtsync_sim_stall_ticks_bucket{le=%q} 2\n", strconv.FormatInt(last, 10)),
		`rtsync_sim_stall_ticks_bucket{le="+Inf"} 3` + "\n",
		"rtsync_sim_stall_ticks_count 3\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestMetricsEndpoint serves /metrics off the live debug mux and checks the
// content type and body against the published counters.
func TestMetricsEndpoint(t *testing.T) {
	st := NewSimStats()
	st.NoteRun()
	PublishSimStats(st)
	sp := NewSweepProgress()
	sp.StartSweep([]string{"(3,50)"}, 2, 1).Shard(0).NoteSchedulable(true)
	PublishSweepProgress(sp)

	d, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", d.Addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, PromContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	checkPromText(t, text)
	for _, want := range []string{
		"rtsync_sim_runs_total 1\n",
		"rtsync_sweep_schedulable_total 1\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// BenchmarkPromText measures one full exposition render — the per-scrape
// cost a running sweep pays on its debug endpoint.
func BenchmarkPromText(b *testing.B) {
	st := NewSimStats()
	for i := 0; i < 100; i++ {
		st.NoteRun()
		st.CountEvent(i % NumEventOps)
		st.NoteRGStall(int64(i) * 7)
		st.AddIdle(i%4, int64(i))
	}
	sp := NewSweepProgress()
	run := sp.StartSweep([]string{"(2,50)", "(4,70)", "(8,90)"}, 100, 4)
	sh := run.Shard(0)
	for i := 0; i < 50; i++ {
		sh.UnitDone(i%3, time.Millisecond)
		sh.NoteSchedulable(i%2 == 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WritePromText(io.Discard, st, sp, nil); err != nil {
			b.Fatal(err)
		}
	}
}
