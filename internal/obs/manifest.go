package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// Manifest records everything needed to attribute and reproduce one CLI
// run: the tool, its full flag configuration (seed included), the toolchain
// and VCS revision that built it, wall-clock bounds, the aggregate
// observability counters, and a checksum of every file the run wrote.
// Every cmd/ tool emits one with -manifest out.json.
type Manifest struct {
	Tool string `json:"tool"`
	// Args are the positional (non-flag) arguments, e.g. the system file.
	Args []string `json:"args,omitempty"`
	// Flags maps every registered flag to its final value — defaults and
	// explicit settings alike, so the manifest is the full configuration.
	Flags map[string]string `json:"flags,omitempty"`

	GoVersion   string `json:"go_version"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`

	Start       time.Time `json:"start"`
	End         time.Time `json:"end"`
	DurationSec float64   `json:"duration_sec"`

	// Sim, Sweep and Analysis carry the aggregate counters of any
	// attached SimStats / SweepProgress / AnalysisStats; Spans digests an
	// attached PipelineTracer (per-phase wall-time totals — "where did
	// the time go").
	Sim      *SimSnapshot      `json:"sim_stats,omitempty"`
	Sweep    *SweepSnapshot    `json:"sweep,omitempty"`
	Analysis *AnalysisSnapshot `json:"analysis_stats,omitempty"`
	Spans    *SpanSummary      `json:"spans,omitempty"`

	// Outputs checksums every file the run reported writing.
	Outputs []OutputFile `json:"outputs,omitempty"`
}

// OutputFile is one written file's identity: path, size, and SHA-256.
type OutputFile struct {
	Path   string `json:"path"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// NewManifest starts a manifest for tool, stamping the start time and the
// build's toolchain/VCS identity from debug.ReadBuildInfo. When fs is
// non-nil (and parsed), every flag's final value and the positional
// arguments are recorded.
func NewManifest(tool string, fs *flag.FlagSet) *Manifest {
	m := &Manifest{
		Tool:      tool,
		GoVersion: runtime.Version(),
		Start:     time.Now(),
	}
	if fs != nil {
		m.Flags = make(map[string]string)
		fs.VisitAll(func(f *flag.Flag) {
			m.Flags[f.Name] = f.Value.String()
		})
		m.Args = append(m.Args, fs.Args()...)
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.VCSRevision = s.Value
			case "vcs.time":
				m.VCSTime = s.Value
			case "vcs.modified":
				m.VCSModified = s.Value == "true"
			}
		}
	}
	return m
}

// AddOutput checksums path and appends it to the manifest's outputs. An
// unreadable file records its error in place of a digest rather than
// failing the run that produced it.
func (m *Manifest) AddOutput(path string) {
	out := OutputFile{Path: path}
	digest, size, err := fileSHA256(path)
	if err != nil {
		out.SHA256 = "error: " + err.Error()
	} else {
		out.SHA256 = digest
		out.Bytes = size
	}
	m.Outputs = append(m.Outputs, out)
}

// Finish stamps the end time and duration.
func (m *Manifest) Finish() {
	m.End = time.Now()
	m.DurationSec = m.End.Sub(m.Start).Seconds()
}

// WriteFile renders the manifest as indented JSON at path.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	return nil
}

// fileSHA256 returns the hex SHA-256 and size of the file at path.
func fileSHA256(path string) (digest string, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}
