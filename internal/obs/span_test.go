package obs

import (
	"testing"
	"time"
)

func TestSpanPhaseString(t *testing.T) {
	if got := SpanUnit.String(); got != "unit" {
		t.Errorf("SpanUnit.String() = %q, want %q", got, "unit")
	}
	if got := SpanTurnstileWait.String(); got != "turnstile-wait" {
		t.Errorf("SpanTurnstileWait.String() = %q, want %q", got, "turnstile-wait")
	}
	if got := NumSpanPhases.String(); got != "unknown" {
		t.Errorf("out-of-range phase String() = %q, want %q", got, "unknown")
	}
	for p := SpanPhase(0); p < NumSpanPhases; p++ {
		if p.String() == "" {
			t.Errorf("phase %d has no name", p)
		}
	}
}

// TestSummary checks the per-phase fold across arenas: counts, totals, and
// maxima aggregate over every worker, in phase enum order, skipping phases
// never recorded.
func TestSummary(t *testing.T) {
	tr := NewPipelineTracer()
	a0 := tr.Arena(0)
	a1 := tr.Arena(1)
	a0.Record(SpanUnit, 100, 400, 0, 0)     // dur 300
	a0.Record(SpanGenerate, 100, 150, 0, 0) // dur 50
	a1.Record(SpanUnit, 200, 1200, 0, 1)    // dur 1000
	a1.RecordBatched(SpanBatchPass, 0, 70, -1, -1, 4)

	sum := tr.Summary()
	if sum.Spans != 4 {
		t.Fatalf("Spans = %d, want 4", sum.Spans)
	}
	want := []SpanPhaseSummary{
		{Phase: "unit", Count: 2, TotalNS: 1300, MaxNS: 1000},
		{Phase: "generate", Count: 1, TotalNS: 50, MaxNS: 50},
		{Phase: "batch-pass", Count: 1, TotalNS: 70, MaxNS: 70},
	}
	if len(sum.Phases) != len(want) {
		t.Fatalf("got %d phases %+v, want %d", len(sum.Phases), sum.Phases, len(want))
	}
	for i, w := range want {
		if sum.Phases[i] != w {
			t.Errorf("phase[%d] = %+v, want %+v", i, sum.Phases[i], w)
		}
	}
}

// TestArenaRetained pins the cross-sweep accumulation contract: asking for
// the same worker index twice returns the same arena.
func TestArenaRetained(t *testing.T) {
	tr := NewPipelineTracer()
	a := tr.Arena(3)
	a.Record(SpanWorker, 0, 10, -1, -1)
	if tr.Arena(3) != a {
		t.Fatal("Arena(3) returned a different arena on the second call")
	}
	if tr.Arena(0) == a {
		t.Fatal("distinct worker indexes share an arena")
	}
	if a.Len() != 1 {
		t.Fatalf("arena Len = %d, want 1", a.Len())
	}
}

// TestSpanRecordSteadyStateZeroAllocs pins the enabled-path cost: once the
// arena's backing array is warm, recording a span is a plain append with no
// per-span allocation.
func TestSpanRecordSteadyStateZeroAllocs(t *testing.T) {
	tr := NewPipelineTracer()
	a := tr.Arena(0)
	for i := 0; i < 1024; i++ {
		a.Record(SpanUnit, int64(i), int64(i+1), 0, int64(i))
	}
	a.spans = a.spans[:0]
	if avg := testing.AllocsPerRun(1000, func() {
		a.Record(SpanUnit, 1, 2, 0, 3)
		if len(a.spans) == 1024 {
			a.spans = a.spans[:0]
		}
	}); avg != 0 {
		t.Fatalf("warm Record allocates %.2f times per span, want 0", avg)
	}
}

// TestStartSamplerFinalSample checks that stopping the sampler takes one
// final counter sample (so the trace's counter tracks reach the end of the
// run) and that stop is idempotent.
func TestStartSamplerFinalSample(t *testing.T) {
	tr := NewPipelineTracer()
	sp := NewSweepProgress()
	run := sp.StartSweep([]string{"(3,50)"}, 4, 1)
	sh := run.Shard(0)
	sh.UnitDone(0, time.Millisecond)
	sh.NoteSchedulable(true)

	stop := tr.StartSampler(sp, time.Hour) // interval never fires in-test
	stop()
	stop() // idempotent

	tr.mu.Lock()
	n := len(tr.samples)
	last := counterSample{}
	if n > 0 {
		last = tr.samples[n-1]
	}
	tr.mu.Unlock()
	if n != 1 {
		t.Fatalf("got %d samples after stop, want exactly the final one", n)
	}
	if last.unitsDone != 1 || last.schedFrac != 1 {
		t.Errorf("final sample = %+v, want unitsDone 1, schedFrac 1", last)
	}
}

// BenchmarkSpanRecord measures one arena append — the whole per-span cost a
// traced sweep pays over the zero-cost disabled path.
func BenchmarkSpanRecord(b *testing.B) {
	tr := NewPipelineTracer()
	a := tr.Arena(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Record(SpanSimulate, int64(i), int64(i)+100, 2, int64(i))
		if len(a.spans) == 1<<16 {
			a.spans = a.spans[:0]
		}
	}
}
