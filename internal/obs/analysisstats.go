package obs

// AnalysisStats collects analyzer counters across one or more analysis
// runs: fixed-point iteration histograms (the warm-start collapse is read
// off FixpointIters), result-cache traffic, and incremental-delta reuse.
// Like SimStats it is shared state — a sweep attaches one AnalysisStats to
// every worker's Analyzer, rtsyncd attaches one to its workspace — so all
// fields are padded atomics and every producer hook is guarded by a nil
// check on the concrete *AnalysisStats.
type AnalysisStats struct {
	// fixpointIters is the distribution of demand-iteration counts per
	// inner fixed-point solve; outerIters the distribution of outer
	// Jacobi/Gauss-Seidel passes per iterative analysis (SA/DS, holistic,
	// MPCP, DPCP).
	fixpointIters Histogram
	outerIters    Histogram
	warmSolves    Counter

	cacheHits      Counter
	cacheMisses    Counter
	cacheEvictions Counter

	deltaAnalyses       Counter
	dirtyProcRecomputes Counter
	cleanProcReuses     Counter
	subtasksRecomputed  Counter
	subtasksReused      Counter
}

// NewAnalysisStats returns a zeroed counter bank.
func NewAnalysisStats() *AnalysisStats { return &AnalysisStats{} }

// ObserveFixpoint records one inner fixed-point solve that took iters
// demand evaluations; warm marks solves that started from a nonzero seed
// (fluid lower bound or a previous pass's converged value).
func (s *AnalysisStats) ObserveFixpoint(iters int64, warm bool) {
	s.fixpointIters.Observe(iters)
	if warm {
		s.warmSolves.Inc()
	}
}

// ObserveOuter records one completed iterative analysis that converged (or
// gave up) after iters outer passes.
func (s *AnalysisStats) ObserveOuter(iters int64) { s.outerIters.Observe(iters) }

// NoteCacheHit counts one result served from the memoization cache.
func (s *AnalysisStats) NoteCacheHit() { s.cacheHits.Inc() }

// NoteCacheMiss counts one cache lookup that had to analyze.
func (s *AnalysisStats) NoteCacheMiss() { s.cacheMisses.Inc() }

// NoteCacheEviction counts one LRU entry displaced by an insert.
func (s *AnalysisStats) NoteCacheEviction() { s.cacheEvictions.Inc() }

// NoteDelta records one incremental re-analysis: dirty processors were
// re-solved, clean processors reused, and likewise for subtask bounds.
func (s *AnalysisStats) NoteDelta(dirtyProcs, cleanProcs, recomputed, reused int64) {
	s.deltaAnalyses.Inc()
	s.dirtyProcRecomputes.Add(dirtyProcs)
	s.cleanProcReuses.Add(cleanProcs)
	s.subtasksRecomputed.Add(recomputed)
	s.subtasksReused.Add(reused)
}

// CacheHits returns the hit count so far (tests and smoke assertions).
func (s *AnalysisStats) CacheHits() int64 { return s.cacheHits.Load() }

// CacheMisses returns the miss count so far.
func (s *AnalysisStats) CacheMisses() int64 { return s.cacheMisses.Load() }

// DirtyProcRecomputes returns the total processors re-solved by
// incremental deltas.
func (s *AnalysisStats) DirtyProcRecomputes() int64 { return s.dirtyProcRecomputes.Load() }

// CleanProcReuses returns the total processors reused by incremental
// deltas.
func (s *AnalysisStats) CleanProcReuses() int64 { return s.cleanProcReuses.Load() }

// FixpointSolves returns the number of inner solves observed so far.
func (s *AnalysisStats) FixpointSolves() int64 { return s.fixpointIters.n.Load() }

// FixpointIterTotal returns the summed demand evaluations across all
// observed solves — the numerator of the mean iteration count.
func (s *AnalysisStats) FixpointIterTotal() int64 { return s.fixpointIters.sum.Load() }

// AnalysisSnapshot is a point-in-time plain-value view of an
// AnalysisStats, shaped for JSON (manifests, the expvar endpoint).
type AnalysisSnapshot struct {
	// FixpointSolves counts inner fixed-point solves; FixpointIters is
	// the distribution of their demand-evaluation counts. WarmSolves is
	// the subset handed a nonzero warm seed.
	FixpointSolves int64              `json:"fixpoint_solves"`
	FixpointIters  *HistogramSnapshot `json:"fixpoint_iters,omitempty"`
	WarmSolves     int64              `json:"warm_solves,omitempty"`
	// OuterAnalyses counts iterative analyses; OuterIters the
	// distribution of their outer pass counts.
	OuterAnalyses int64              `json:"outer_analyses,omitempty"`
	OuterIters    *HistogramSnapshot `json:"outer_iters,omitempty"`
	// Cache traffic of an attached ResultCache.
	CacheHits      int64 `json:"cache_hits,omitempty"`
	CacheMisses    int64 `json:"cache_misses,omitempty"`
	CacheEvictions int64 `json:"cache_evictions,omitempty"`
	// Incremental-delta reuse: per delta, processors re-solved vs kept
	// and subtask bounds recomputed vs copied.
	DeltaAnalyses       int64 `json:"delta_analyses,omitempty"`
	DirtyProcRecomputes int64 `json:"dirty_proc_recomputes,omitempty"`
	CleanProcReuses     int64 `json:"clean_proc_reuses,omitempty"`
	SubtasksRecomputed  int64 `json:"subtasks_recomputed,omitempty"`
	SubtasksReused      int64 `json:"subtasks_reused,omitempty"`
}

// Snapshot captures the current counter values. Concurrent writers may
// advance counters between loads; each individual value is exact.
func (s *AnalysisStats) Snapshot() AnalysisSnapshot {
	snap := AnalysisSnapshot{
		FixpointSolves:      s.fixpointIters.n.Load(),
		WarmSolves:          s.warmSolves.Load(),
		OuterAnalyses:       s.outerIters.n.Load(),
		CacheHits:           s.cacheHits.Load(),
		CacheMisses:         s.cacheMisses.Load(),
		CacheEvictions:      s.cacheEvictions.Load(),
		DeltaAnalyses:       s.deltaAnalyses.Load(),
		DirtyProcRecomputes: s.dirtyProcRecomputes.Load(),
		CleanProcReuses:     s.cleanProcReuses.Load(),
		SubtasksRecomputed:  s.subtasksRecomputed.Load(),
		SubtasksReused:      s.subtasksReused.Load(),
	}
	if snap.FixpointSolves > 0 {
		h := s.fixpointIters.Snapshot()
		snap.FixpointIters = &h
	}
	if snap.OuterAnalyses > 0 {
		h := s.outerIters.Snapshot()
		snap.OuterIters = &h
	}
	return snap
}
