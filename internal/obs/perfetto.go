package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// PerfettoWriter emits Chrome trace-event JSON ("JSON Array Format" with a
// traceEvents wrapper), the format ui.perfetto.dev and chrome://tracing
// load directly. It is hand-rolled — no encoding/json — so the output is
// deterministic byte for byte: events appear exactly in emission order,
// keys in fixed order, timestamps as exact microsecond decimals.
//
// The format in brief: each event has a phase ("X" complete slice with
// ts+dur, "i" instant, "C" counter, "M" metadata), a pid/tid placing it on
// a track, and timestamps in floating-point microseconds. Slices on one
// tid must nest like a call stack; separate tracks use separate tids.
type PerfettoWriter struct {
	w     *bufio.Writer
	err   error
	first bool
}

// NewPerfettoWriter starts the traceEvents array on w.
func NewPerfettoWriter(w io.Writer) *PerfettoWriter {
	pw := &PerfettoWriter{w: bufio.NewWriter(w), first: true}
	pw.raw(`{"traceEvents":[`)
	return pw
}

// Close terminates the JSON document and flushes. Returns the first error
// encountered by any emission.
func (p *PerfettoWriter) Close() error {
	p.raw("\n]}\n")
	if p.err == nil {
		p.err = p.w.Flush()
	}
	return p.err
}

func (p *PerfettoWriter) raw(s string) {
	if p.err != nil {
		return
	}
	_, p.err = p.w.WriteString(s)
}

// begin opens one event object, handling the comma/newline separator.
func (p *PerfettoWriter) begin() {
	if p.first {
		p.raw("\n")
		p.first = false
	} else {
		p.raw(",\n")
	}
}

// micros renders ns as exact microseconds with millinanosecond precision
// ("1234.567"), avoiding float formatting entirely.
func micros(ns int64) string {
	neg := ""
	if ns < 0 {
		neg = "-"
		ns = -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// quote writes a JSON string literal. Labels here are controlled
// identifiers (cell keys, phase names), but escape defensively anyway.
func quote(s string) string { return strconv.Quote(s) }

// ProcessName emits metadata naming a pid's track group.
func (p *PerfettoWriter) ProcessName(pid int, name string) {
	p.begin()
	p.raw(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`, pid, quote(name)))
}

// ThreadName emits metadata naming one (pid, tid) track.
func (p *PerfettoWriter) ThreadName(pid, tid int, name string) {
	p.begin()
	p.raw(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`, pid, tid, quote(name)))
}

// Slice emits one complete ("X") slice of durNS on (pid, tid) starting at
// tsNS. args is emitted in the given order; pass nil for none.
func (p *PerfettoWriter) Slice(pid, tid int, name string, tsNS, durNS int64, args []PerfettoArg) {
	p.begin()
	p.raw(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"name":%s,"ts":%s,"dur":%s`,
		pid, tid, quote(name), micros(tsNS), micros(durNS)))
	p.args(args)
	p.raw("}")
}

// Instant emits a thread-scoped instant ("i") event at tsNS.
func (p *PerfettoWriter) Instant(pid, tid int, name string, tsNS int64, args []PerfettoArg) {
	p.begin()
	p.raw(fmt.Sprintf(`{"ph":"i","pid":%d,"tid":%d,"name":%s,"ts":%s,"s":"t"`,
		pid, tid, quote(name), micros(tsNS)))
	p.args(args)
	p.raw("}")
}

// Counter emits a counter ("C") sample: Perfetto renders one filled track
// per series name. Values format via strconv.FormatFloat 'g' -1, which is
// deterministic and round-trips exactly.
func (p *PerfettoWriter) Counter(pid int, name string, tsNS int64, series string, value float64) {
	p.begin()
	p.raw(fmt.Sprintf(`{"ph":"C","pid":%d,"name":%s,"ts":%s,"args":{%s:%s}}`,
		pid, quote(name), micros(tsNS), quote(series), strconv.FormatFloat(value, 'g', -1, 64)))
}

// PerfettoArg is one slice argument (shown in Perfetto's detail pane).
type PerfettoArg struct {
	Key string
	Str string // used when IsNum is false
	Num int64
	// IsNum selects numeric rendering.
	IsNum bool
}

func (p *PerfettoWriter) args(args []PerfettoArg) {
	if len(args) == 0 {
		return
	}
	p.raw(`,"args":{`)
	for i, a := range args {
		if i > 0 {
			p.raw(",")
		}
		p.raw(quote(a.Key))
		p.raw(":")
		if a.IsNum {
			p.raw(strconv.FormatInt(a.Num, 10))
		} else {
			p.raw(quote(a.Str))
		}
	}
	p.raw("}")
}

// Pipeline trace layout: a single "rtsync pipeline" process (pid 1) with
// one thread track per worker arena (tid = worker+1), plus counter tracks
// sampled from SweepProgress.
const pipelinePID = 1

// WritePerfetto exports every recorded span and counter sample as Chrome
// trace-event JSON. Spans within one arena are emitted in start order
// (stable-sorted; ties keep record order with longer spans first so
// parents precede children), which both Perfetto and the nesting validator
// require. Call after the sweep drains.
func (t *PipelineTracer) WritePerfetto(w io.Writer) error {
	t.mu.Lock()
	arenas := t.arenas
	labels := t.labels
	samples := t.samples
	t.mu.Unlock()

	pw := NewPerfettoWriter(w)
	pw.ProcessName(pipelinePID, "rtsync pipeline")
	for wi := range arenas {
		pw.ThreadName(pipelinePID, wi+1, fmt.Sprintf("worker %d", wi))
	}
	for wi, a := range arenas {
		spans := make([]spanRec, len(a.spans))
		copy(spans, a.spans)
		sort.SliceStable(spans, func(i, j int) bool {
			if spans[i].start != spans[j].start {
				return spans[i].start < spans[j].start
			}
			return spans[i].dur > spans[j].dur
		})
		for i := range spans {
			r := &spans[i]
			var args []PerfettoArg
			if r.label >= 0 && int(r.label) < len(labels) {
				args = append(args, PerfettoArg{Key: "cell", Str: labels[r.label]})
			}
			if r.unit >= 0 {
				args = append(args, PerfettoArg{Key: "unit", Num: r.unit, IsNum: true})
			}
			if r.batch > 0 {
				args = append(args, PerfettoArg{Key: "batch", Num: int64(r.batch), IsNum: true})
			}
			pw.Slice(pipelinePID, wi+1, r.phase.String(), r.start, r.dur, args)
		}
	}
	for _, c := range samples {
		pw.Counter(pipelinePID, "units/sec", c.ts, "rate", c.rate)
		pw.Counter(pipelinePID, "schedulable fraction", c.ts, "frac", c.schedFrac)
		pw.Counter(pipelinePID, "units done", c.ts, "done", float64(c.unitsDone))
	}
	return pw.Close()
}
