package obs

import (
	"flag"
	"fmt"
	"os"
)

// CLI is the shared observability flag plumbing for the cmd/ tools. It
// extends the runtime/pprof -cpuprofile/-memprofile pair with:
//
//	-manifest out.json   write a run manifest (flags, build info, counters,
//	                     output checksums) at exit
//	-debug-addr addr     serve /debug/pprof and /debug/vars while running
//
// Usage: Register on the FlagSet, Start after parsing, defer the returned
// stop. Stats objects attached between Start
// and stop land in the manifest and on the debug endpoint.
type CLI struct {
	// ManifestPath and DebugAddr are the parsed flag values.
	ManifestPath string
	DebugAddr    string

	prof     *profileFlags
	manifest *Manifest
	debug    *DebugServer
	sim      *SimStats
	sweep    *SweepProgress
	analysis *AnalysisStats
	tracer   *PipelineTracer
	outputs  []string
}

// Register adds the observability and profiling flags to fs.
func Register(fs *flag.FlagSet) *CLI {
	c := &CLI{prof: registerProfileFlags(fs)}
	fs.StringVar(&c.ManifestPath, "manifest", "",
		"write a JSON run manifest (config, build info, counters, output checksums) to this file")
	fs.StringVar(&c.DebugAddr, "debug-addr", "",
		"serve /debug/pprof and /debug/vars on this address (host:port) while running")
	return c
}

// Observing reports whether any consumer of runtime counters is enabled —
// the tools use it to decide whether to allocate a SimStats at all, keeping
// plain runs on the nil-stats zero-cost path.
func (c *CLI) Observing() bool { return c.ManifestPath != "" || c.DebugAddr != "" }

// Start begins profiling (if requested), starts the debug endpoint (if
// requested), and opens the manifest. The returned stop function — always
// non-nil on success, meant for defer — stops the profilers, closes the
// endpoint, and writes the manifest.
func (c *CLI) Start(tool string, fs *flag.FlagSet) (stop func(), err error) {
	stopProf, err := c.prof.start()
	if err != nil {
		return nil, err
	}
	c.manifest = NewManifest(tool, fs)
	if c.DebugAddr != "" {
		c.debug, err = ServeDebug(c.DebugAddr)
		if err != nil {
			stopProf()
			return nil, fmt.Errorf("debug-addr: %w", err)
		}
		fmt.Fprintf(os.Stderr, "%s: debug endpoint on http://%s/debug/\n", tool, c.debug.Addr)
	}
	return func() {
		stopProf()
		c.debug.Close()
		c.writeManifest()
	}, nil
}

// AttachSimStats routes engine counters into the manifest and publishes
// them on the debug endpoint.
func (c *CLI) AttachSimStats(st *SimStats) {
	c.sim = st
	PublishSimStats(st)
}

// AttachSweepProgress routes sweep telemetry into the manifest and
// publishes it on the debug endpoint.
func (c *CLI) AttachSweepProgress(sp *SweepProgress) {
	c.sweep = sp
	PublishSweepProgress(sp)
}

// AttachAnalysisStats routes analyzer counters into the manifest and
// publishes them on the debug endpoint.
func (c *CLI) AttachAnalysisStats(st *AnalysisStats) {
	c.analysis = st
	PublishAnalysisStats(st)
}

// AttachTracer routes the pipeline tracer's span summary into the
// manifest.
func (c *CLI) AttachTracer(t *PipelineTracer) { c.tracer = t }

// AddOutput records a file this run wrote; it is checksummed when the
// manifest is written, after all writes are done.
func (c *CLI) AddOutput(path string) { c.outputs = append(c.outputs, path) }

// writeManifest finalizes and writes the manifest when -manifest was given.
// Manifest errors go to stderr rather than clobbering the command's own
// exit status.
func (c *CLI) writeManifest() {
	if c.ManifestPath == "" || c.manifest == nil {
		return
	}
	if c.sim != nil {
		snap := c.sim.Snapshot()
		c.manifest.Sim = &snap
	}
	if c.sweep != nil {
		snap := c.sweep.Snapshot()
		c.manifest.Sweep = &snap
	}
	if c.analysis != nil {
		snap := c.analysis.Snapshot()
		c.manifest.Analysis = &snap
	}
	if c.tracer != nil {
		sum := c.tracer.Summary()
		c.manifest.Spans = &sum
	}
	for _, p := range c.outputs {
		c.manifest.AddOutput(p)
	}
	c.manifest.Finish()
	if err := c.manifest.WriteFile(c.ManifestPath); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}
