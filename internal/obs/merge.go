package obs

// CoreCounts is the handful of headline engine counters cheap enough to
// snapshot per sweep unit: total events popped, preemptions, context
// switches, and completed runs. The record store diffs two CoreCounts to
// attribute engine work to one swept system.
type CoreCounts struct {
	Events          int64
	Preemptions     int64
	ContextSwitches int64
	Runs            int64
}

// Core loads the headline counters. Unlike Snapshot it allocates nothing,
// so the sweep can call it before and after every unit.
func (s *SimStats) Core() CoreCounts {
	var c CoreCounts
	for op := range s.events {
		c.Events += s.events[op].Load()
	}
	c.Preemptions = s.preemptions.Load()
	c.ContextSwitches = s.contextSwitches.Load()
	c.Runs = s.runs.Load()
	return c
}

// Merge folds src's counters into s: sums for counts and histograms, max
// for the high-water mark. Sweep workers that keep private per-worker
// SimStats banks (so per-unit deltas are exact, not interleaved with other
// workers) merge them into the shared sweep-wide bank at drain time.
func (s *SimStats) Merge(src *SimStats) {
	for op := range s.events {
		s.events[op].Add(src.events[op].Load())
	}
	s.preemptions.Add(src.preemptions.Load())
	s.contextSwitches.Add(src.contextSwitches.Load())
	s.rgStalls.Add(src.rgStalls.Load())
	s.queueHighWater.Max(src.queueHighWater.Load())
	s.cascades.Add(src.cascades.Load())
	s.runs.Add(src.runs.Load())
	for p := range s.idle {
		s.idle[p].Add(src.idle[p].Load())
	}
	s.stall.Merge(&src.stall)
	s.lockAcquisitions.Add(src.lockAcquisitions.Load())
	s.lockSuspensions.Add(src.lockSuspensions.Load())
	s.priorityBoosts.Add(src.priorityBoosts.Load())
	s.lockStall.Merge(&src.lockStall)
	s.batchPasses.Add(src.batchPasses.Load())
	s.batchLanes.Add(src.batchLanes.Load())
	s.batchLaneHighWater.Max(src.batchLaneHighWater.Load())
}

// Merge folds src's buckets, sum, and count into h.
func (h *Histogram) Merge(src *Histogram) {
	for b := range h.counts {
		h.counts[b].Add(src.counts[b].Load())
	}
	h.sum.Add(src.sum.Load())
	h.n.Add(src.n.Load())
}
