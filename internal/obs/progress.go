package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SweepProgress aggregates live telemetry for one or more experiment
// sweeps: units done against the announced total, per-cell wall time,
// schedulable/unschedulable tallies, and the cell currently being swept.
// Workers write through per-worker SweepShards (no shared cache lines on
// the unit path); the progress reporter and the debug endpoint read the
// atomics directly. One SweepProgress can span several sweeps — rtexperiments
// with -figure all announces each study's sweep as it starts, so done/total
// and the ETA stay meaningful across the whole invocation.
type SweepProgress struct {
	start   time.Time
	total   atomic.Int64
	current atomic.Pointer[string]

	mu   sync.Mutex
	runs []*SweepRun
}

// NewSweepProgress returns an empty progress tracker; elapsed time and
// rates are measured from this call.
func NewSweepProgress() *SweepProgress {
	return &SweepProgress{start: time.Now()}
}

// StartSweep announces a sweep of len(cells)*unitsPerCell units processed
// by up to workers shards and returns the per-sweep handle. cells are the
// grid labels in config order; the returned run retains the slice.
func (sp *SweepProgress) StartSweep(cells []string, unitsPerCell, workers int) *SweepRun {
	r := &SweepRun{cells: cells, shards: make([]*SweepShard, workers)}
	for i := range r.shards {
		r.shards[i] = &SweepShard{
			cellUnits: make([]atomic.Int64, len(cells)),
			cellNanos: make([]atomic.Int64, len(cells)),
		}
	}
	sp.total.Add(int64(len(cells) * unitsPerCell))
	sp.mu.Lock()
	sp.runs = append(sp.runs, r)
	sp.mu.Unlock()
	return r
}

// SetCurrent records the cell label now being swept. Callers pass a pointer
// into the labels slice they handed StartSweep, so the hot path stores one
// pointer and allocates nothing.
func (sp *SweepProgress) SetCurrent(label *string) { sp.current.Store(label) }

// SweepRun is one announced sweep's shard set.
type SweepRun struct {
	cells  []string
	shards []*SweepShard
}

// Shard returns worker i's shard.
func (r *SweepRun) Shard(i int) *SweepShard { return r.shards[i] }

// SweepShard is one worker's private slice of the telemetry: written by
// exactly one goroutine, read concurrently by snapshots. Shards are
// separate heap objects, so workers never contend on a cache line.
type SweepShard struct {
	done      atomic.Int64
	wallNanos atomic.Int64
	sched     atomic.Int64
	unsched   atomic.Int64
	cellUnits []atomic.Int64
	cellNanos []atomic.Int64
}

// UnitDone records one finished unit of the given cell (config index) and
// its wall time.
func (sh *SweepShard) UnitDone(cell int, wall time.Duration) {
	sh.done.Add(1)
	sh.wallNanos.Add(int64(wall))
	if uint(cell) < uint(len(sh.cellUnits)) {
		sh.cellUnits[cell].Add(1)
		sh.cellNanos[cell].Add(int64(wall))
	}
}

// NoteSchedulable tallies one analyzed system as schedulable or not.
func (sh *SweepShard) NoteSchedulable(ok bool) {
	if ok {
		sh.sched.Add(1)
	} else {
		sh.unsched.Add(1)
	}
}

// CellStat is one cell's aggregate in a snapshot.
type CellStat struct {
	Cell    string  `json:"cell"`
	Units   int64   `json:"units"`
	WallSec float64 `json:"wall_sec"`
	// SystemsPerSec is Units/WallSec — the per-cell throughput; cells
	// whose systems simulate longer show it dropping.
	SystemsPerSec float64 `json:"systems_per_sec"`
}

// SweepSnapshot is the JSON-friendly point-in-time view of a SweepProgress.
type SweepSnapshot struct {
	UnitsDone     int64   `json:"units_done"`
	UnitsTotal    int64   `json:"units_total"`
	Schedulable   int64   `json:"schedulable"`
	Unschedulable int64   `json:"unschedulable"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	// SystemsPerSec is the whole-sweep throughput (units per elapsed
	// second, all workers combined).
	SystemsPerSec float64 `json:"systems_per_sec"`
	// ETASec extrapolates the remaining units at the current rate; 0 when
	// done or when no rate is established yet.
	ETASec      float64    `json:"eta_sec"`
	CurrentCell string     `json:"current_cell,omitempty"`
	Cells       []CellStat `json:"cells,omitempty"`
}

// Snapshot aggregates all shards of all announced sweeps. Cells with the
// same label across sweeps merge.
func (sp *SweepProgress) Snapshot() SweepSnapshot {
	s := SweepSnapshot{
		UnitsTotal: sp.total.Load(),
		ElapsedSec: time.Since(sp.start).Seconds(),
	}
	if cur := sp.current.Load(); cur != nil {
		s.CurrentCell = *cur
	}
	sp.mu.Lock()
	runs := sp.runs
	sp.mu.Unlock()
	byCell := make(map[string]int)
	for _, r := range runs {
		for _, sh := range r.shards {
			s.UnitsDone += sh.done.Load()
			s.Schedulable += sh.sched.Load()
			s.Unschedulable += sh.unsched.Load()
			for ci := range r.cells {
				units := sh.cellUnits[ci].Load()
				if units == 0 {
					continue
				}
				i, ok := byCell[r.cells[ci]]
				if !ok {
					i = len(s.Cells)
					byCell[r.cells[ci]] = i
					s.Cells = append(s.Cells, CellStat{Cell: r.cells[ci]})
				}
				s.Cells[i].Units += units
				s.Cells[i].WallSec += float64(sh.cellNanos[ci].Load()) / 1e9
			}
		}
	}
	for i := range s.Cells {
		if s.Cells[i].WallSec > 0 {
			s.Cells[i].SystemsPerSec = float64(s.Cells[i].Units) / s.Cells[i].WallSec
		}
	}
	if s.ElapsedSec > 0 {
		s.SystemsPerSec = float64(s.UnitsDone) / s.ElapsedSec
	}
	if left := s.UnitsTotal - s.UnitsDone; left > 0 && s.SystemsPerSec > 0 {
		s.ETASec = float64(left) / s.SystemsPerSec
	}
	return s
}

// Line renders the snapshot as the reporter's one-line status.
func (s SweepSnapshot) Line() string {
	pct := 0.0
	if s.UnitsTotal > 0 {
		pct = 100 * float64(s.UnitsDone) / float64(s.UnitsTotal)
	}
	line := fmt.Sprintf("[sweep] %d/%d units (%.1f%%) | %.1f systems/s",
		s.UnitsDone, s.UnitsTotal, pct, s.SystemsPerSec)
	if s.CurrentCell != "" {
		line += " | cell " + s.CurrentCell
	}
	if s.ETASec > 0 {
		line += fmt.Sprintf(" | eta %s", (time.Duration(s.ETASec * float64(time.Second))).Round(time.Second))
	}
	return line
}

// StartReporter prints a one-line status to w every interval until the
// returned stop function is called; stop prints one final line. The
// reporter only reads atomics, so it never perturbs sweep workers or the
// deterministic ordered-commit turnstile.
func (sp *SweepProgress) StartReporter(w io.Writer, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintln(w, sp.Snapshot().Line())
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
			fmt.Fprintln(w, sp.Snapshot().Line())
		})
	}
}
