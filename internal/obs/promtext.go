package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// promtext renders SimStats and SweepProgress in the Prometheus text
// exposition format (version 0.0.4) with no dependencies: a scraper — or
// the future rtsyncd dispatcher — GETs /metrics off the -debug-addr mux
// and sees every engine counter and sweep gauge. The log2 Histograms map
// onto native Prometheus histograms: log2 bucket b covers values up to
// 2^b - 1 inclusive, so the cumulative `le` series is exact (the overflow
// bucket has no finite bound and folds only into `+Inf`).

// PromContentType is the Content-Type of the 0.0.4 text format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promEscaper escapes a label value per the exposition format.
var promEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *promWriter) header(name, typ, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one un-labeled sample line.
func (p *promWriter) sample(name string, v int64) {
	p.printf("%s %d\n", name, v)
}

// sampleF emits one un-labeled float sample line.
func (p *promWriter) sampleF(name string, v float64) {
	p.printf("%s %s\n", name, strconv.FormatFloat(v, 'g', -1, 64))
}

// labeled emits one sample with a single label.
func (p *promWriter) labeled(name, label, value string, v int64) {
	p.printf("%s{%s=%q} %d\n", name, label, promEscaper.Replace(value), v)
}

func (p *promWriter) labeledF(name, label, value string, v float64) {
	p.printf("%s{%s=%q} %s\n", name, label, promEscaper.Replace(value), strconv.FormatFloat(v, 'g', -1, 64))
}

// histogram renders a log2 Histogram as a native Prometheus histogram:
// cumulative counts at le = 2^b - 1 for every finite bucket, the overflow
// bucket folded into +Inf, then _sum and _count.
func (p *promWriter) histogram(name, help string, h *Histogram) {
	p.header(name, "histogram", help)
	cum := int64(0)
	for b := 0; b < HistBuckets-1; b++ {
		cum += h.counts[b].Load()
		upTo := int64(0)
		if b > 0 {
			upTo = 1<<uint(b) - 1
		}
		p.printf("%s_bucket{le=\"%d\"} %d\n", name, upTo, cum)
	}
	cum += h.counts[HistBuckets-1].Load()
	p.printf("%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	p.printf("%s_sum %d\n", name, h.sum.Load())
	p.printf("%s_count %d\n", name, h.n.Load())
}

// WritePromText renders sim, sweep and analysis (any may be nil) to w in
// the Prometheus text exposition format. Counter reads are the same
// lock-free atomic loads the expvar endpoint uses, so scraping never
// perturbs a running sweep.
func WritePromText(w io.Writer, sim *SimStats, sweep *SweepProgress, analysis *AnalysisStats) error {
	p := &promWriter{w: w}
	if sim != nil {
		p.header("rtsync_sim_events_total", "counter", "Simulation events popped, by event op.")
		for op, name := range eventOpNames {
			p.labeled("rtsync_sim_events_total", "op", name, sim.events[op].Load())
		}
		p.header("rtsync_sim_preemptions_total", "counter", "Jobs displaced from a processor mid-execution.")
		p.sample("rtsync_sim_preemptions_total", sim.preemptions.Load())
		p.header("rtsync_sim_context_switches_total", "counter", "Job dispatches onto a processor.")
		p.sample("rtsync_sim_context_switches_total", sim.contextSwitches.Load())
		p.header("rtsync_sim_release_guard_stalls_total", "counter", "Synchronization signals held by the Release Guard protocol.")
		p.sample("rtsync_sim_release_guard_stalls_total", sim.rgStalls.Load())
		p.header("rtsync_sim_event_queue_high_water", "gauge", "Deepest event-queue occupancy observed.")
		p.sample("rtsync_sim_event_queue_high_water", sim.queueHighWater.Load())
		p.header("rtsync_sim_wheel_cascades_total", "counter", "Timing-wheel bucket redistributions (zero under the heap queue).")
		p.sample("rtsync_sim_wheel_cascades_total", sim.cascades.Load())
		p.header("rtsync_sim_runs_total", "counter", "Completed simulation runs.")
		p.sample("rtsync_sim_runs_total", sim.runs.Load())
		p.header("rtsync_sim_lock_acquisitions_total", "counter", "Critical-section entries (local or global resources).")
		p.sample("rtsync_sim_lock_acquisitions_total", sim.lockAcquisitions.Load())
		p.header("rtsync_sim_lock_suspensions_total", "counter", "Jobs suspended on a busy global resource.")
		p.sample("rtsync_sim_lock_suspensions_total", sim.lockSuspensions.Load())
		p.header("rtsync_sim_priority_boosts_total", "counter", "Critical sections raising their holder above base priority.")
		p.sample("rtsync_sim_priority_boosts_total", sim.priorityBoosts.Load())
		p.header("rtsync_sim_batch_passes_total", "counter", "Interleaved batch-engine passes.")
		p.sample("rtsync_sim_batch_passes_total", sim.batchPasses.Load())
		p.header("rtsync_sim_batch_lanes_total", "counter", "Systems simulated across batch passes.")
		p.sample("rtsync_sim_batch_lanes_total", sim.batchLanes.Load())
		p.header("rtsync_sim_batch_lane_high_water", "gauge", "Widest interleaved batch pass observed.")
		p.sample("rtsync_sim_batch_lane_high_water", sim.batchLaneHighWater.Load())
		p.header("rtsync_sim_idle_ticks_total", "counter", "Idle processor ticks, by processor index.")
		for proc := 0; proc < MaxProcs; proc++ {
			if v := sim.idle[proc].Load(); v != 0 {
				p.labeled("rtsync_sim_idle_ticks_total", "proc", strconv.Itoa(proc), v)
			}
		}
		p.histogram("rtsync_sim_stall_ticks", "Release Guard stall durations in ticks.", &sim.stall)
		p.histogram("rtsync_sim_lock_stall_ticks", "Global-resource suspension durations in ticks.", &sim.lockStall)
	}
	if sweep != nil {
		s := sweep.Snapshot()
		p.header("rtsync_sweep_units_done", "gauge", "Sweep units completed so far.")
		p.sample("rtsync_sweep_units_done", s.UnitsDone)
		p.header("rtsync_sweep_units_total", "gauge", "Sweep units announced in total.")
		p.sample("rtsync_sweep_units_total", s.UnitsTotal)
		p.header("rtsync_sweep_schedulable_total", "counter", "Analyzed systems found schedulable.")
		p.sample("rtsync_sweep_schedulable_total", s.Schedulable)
		p.header("rtsync_sweep_unschedulable_total", "counter", "Analyzed systems found unschedulable.")
		p.sample("rtsync_sweep_unschedulable_total", s.Unschedulable)
		p.header("rtsync_sweep_elapsed_seconds", "gauge", "Wall seconds since progress tracking started.")
		p.sampleF("rtsync_sweep_elapsed_seconds", s.ElapsedSec)
		p.header("rtsync_sweep_systems_per_second", "gauge", "Whole-sweep unit throughput.")
		p.sampleF("rtsync_sweep_systems_per_second", s.SystemsPerSec)
		p.header("rtsync_sweep_eta_seconds", "gauge", "Estimated seconds to sweep completion at the current rate.")
		p.sampleF("rtsync_sweep_eta_seconds", s.ETASec)
		if len(s.Cells) > 0 {
			p.header("rtsync_sweep_cell_units", "gauge", "Units completed, by sweep cell.")
			for _, c := range s.Cells {
				p.labeled("rtsync_sweep_cell_units", "cell", c.Cell, c.Units)
			}
			p.header("rtsync_sweep_cell_wall_seconds", "gauge", "Worker wall seconds spent, by sweep cell.")
			for _, c := range s.Cells {
				p.labeledF("rtsync_sweep_cell_wall_seconds", "cell", c.Cell, c.WallSec)
			}
		}
	}
	if analysis != nil {
		p.header("rtsync_analysis_warm_solves_total", "counter", "Fixed-point solves handed a nonzero warm seed.")
		p.sample("rtsync_analysis_warm_solves_total", analysis.warmSolves.Load())
		p.header("rtsync_analysis_cache_hits_total", "counter", "Analyses served from the result cache.")
		p.sample("rtsync_analysis_cache_hits_total", analysis.cacheHits.Load())
		p.header("rtsync_analysis_cache_misses_total", "counter", "Cache lookups that had to analyze.")
		p.sample("rtsync_analysis_cache_misses_total", analysis.cacheMisses.Load())
		p.header("rtsync_analysis_cache_evictions_total", "counter", "LRU cache entries displaced by inserts.")
		p.sample("rtsync_analysis_cache_evictions_total", analysis.cacheEvictions.Load())
		p.header("rtsync_analysis_delta_analyses_total", "counter", "Incremental (dirty-processor) re-analyses.")
		p.sample("rtsync_analysis_delta_analyses_total", analysis.deltaAnalyses.Load())
		p.header("rtsync_analysis_dirty_proc_recomputes_total", "counter", "Processors re-solved by incremental deltas.")
		p.sample("rtsync_analysis_dirty_proc_recomputes_total", analysis.dirtyProcRecomputes.Load())
		p.header("rtsync_analysis_clean_proc_reuses_total", "counter", "Processors reused untouched by incremental deltas.")
		p.sample("rtsync_analysis_clean_proc_reuses_total", analysis.cleanProcReuses.Load())
		p.header("rtsync_analysis_subtasks_recomputed_total", "counter", "Subtask bounds recomputed by incremental deltas.")
		p.sample("rtsync_analysis_subtasks_recomputed_total", analysis.subtasksRecomputed.Load())
		p.header("rtsync_analysis_subtasks_reused_total", "counter", "Subtask bounds copied forward by incremental deltas.")
		p.sample("rtsync_analysis_subtasks_reused_total", analysis.subtasksReused.Load())
		p.histogram("rtsync_analysis_fixpoint_iters", "Demand evaluations per inner fixed-point solve.", &analysis.fixpointIters)
		p.histogram("rtsync_analysis_outer_iters", "Outer passes per iterative analysis.", &analysis.outerIters)
	}
	return p.err
}

// metricsHandler serves the published SimStats/SweepProgress/AnalysisStats
// (the same globals the expvar endpoint reads) as /metrics.
func metricsHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", PromContentType)
	_ = WritePromText(w, pubSim.Load(), pubSweep.Load(), pubAnalysis.Load())
}
