// The runtime/pprof flag plumbing (-cpuprofile/-memprofile) lives here so
// CLI profiling and the rest of the observability surface register and stop
// together; it was the former internal/profiling package, subsumed into obs
// when Register grew the manifest and debug-endpoint flags.
package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// profileFlags holds the profile destinations parsed from a FlagSet.
type profileFlags struct {
	cpu string
	mem string
}

// registerProfileFlags adds -cpuprofile and -memprofile to fs.
func registerProfileFlags(fs *flag.FlagSet) *profileFlags {
	f := &profileFlags{}
	fs.StringVar(&f.cpu, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.mem, "memprofile", "", "write a heap profile to this file at exit")
	return f
}

// start begins CPU profiling when requested and returns a stop function to
// defer: it stops the CPU profile and writes the heap profile. Stop errors
// are reported on stderr rather than returned, since the command's own
// result should win.
func (f *profileFlags) start() (stop func(), err error) {
	var cpuFile *os.File
	if f.cpu != "" {
		cpuFile, err = os.Create(f.cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			}
		}
		if f.mem != "" {
			out, err := os.Create(f.mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(out); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			if err := out.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
