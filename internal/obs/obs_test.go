package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("Load = %d, want 5", got)
	}
	c.Max(3)
	if got := c.Load(); got != 5 {
		t.Fatalf("Max(3) lowered the counter to %d", got)
	}
	c.Max(9)
	if got := c.Load(); got != 9 {
		t.Fatalf("Max(9) = %d, want 9", got)
	}
	c.Store(0)
	if got := c.Load(); got != 0 {
		t.Fatalf("Store(0) = %d", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-7) // clamps to 0
	h.Observe(1)
	h.Observe(5)
	h.Observe(1 << 40) // overflow lands in the last bucket
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if s.Sum != 0+0+1+5+1<<40 {
		t.Fatalf("Sum = %d", s.Sum)
	}
	want := []HistogramBucket{
		{UpTo: 0, Count: 2},
		{UpTo: 1, Count: 1},
		{UpTo: 7, Count: 1},
		{UpTo: 1<<(HistBuckets-1) - 1, Count: 1},
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, s.Buckets[i], want[i])
		}
	}
}

func TestSimStatsSnapshot(t *testing.T) {
	st := NewSimStats()
	for op := 0; op < NumEventOps; op++ {
		for k := 0; k <= op; k++ {
			st.CountEvent(op)
		}
	}
	st.CountEvent(NumEventOps) // out of range: dropped
	st.CountEvent(-1)          // out of range: dropped
	st.NotePreemption()
	st.NoteContextSwitch()
	st.NoteContextSwitch()
	st.NoteRGStall(3)
	st.ObserveQueueDepth(10)
	st.ObserveQueueDepth(4)
	st.AddCascades(3)
	st.AddCascades(0) // no-op fast path
	st.AddIdle(0, 100)
	st.AddIdle(2, 50)
	st.AddIdle(MaxProcs+5, 7) // clamps into the last slot
	st.AddIdle(-1, 99)        // dropped
	st.NoteRun()
	st.NoteLockAcquisition()
	st.NoteLockAcquisition()
	st.NotePriorityBoost()
	st.NoteLockSuspension(5)

	s := st.Snapshot()
	if s.EventsTotal != 1+2+3+4+5+6 {
		t.Errorf("EventsTotal = %d, want 21", s.EventsTotal)
	}
	if s.EventsByOp["completion"] != 1 || s.EventsByOp["func"] != 5 || s.EventsByOp["segment"] != 6 {
		t.Errorf("EventsByOp = %v", s.EventsByOp)
	}
	if s.LockAcquisitions != 2 || s.PriorityBoosts != 1 {
		t.Errorf("lock counters: %+v", s)
	}
	if s.LockSuspensions != 1 || s.LockStallTicks == nil || s.LockStallTicks.Sum != 5 {
		t.Errorf("suspensions: %d, %+v", s.LockSuspensions, s.LockStallTicks)
	}
	if s.Preemptions != 1 || s.ContextSwitches != 2 || s.Runs != 1 {
		t.Errorf("counters: %+v", s)
	}
	if s.EventQueueHighWater != 10 {
		t.Errorf("high water = %d, want 10", s.EventQueueHighWater)
	}
	if s.WheelCascades != 3 {
		t.Errorf("cascades = %d, want 3", s.WheelCascades)
	}
	if s.ReleaseGuardStalls != 1 || s.StallTicks == nil || s.StallTicks.Sum != 3 {
		t.Errorf("stalls: %d, %+v", s.ReleaseGuardStalls, s.StallTicks)
	}
	if len(s.IdleTicksPerProc) != MaxProcs {
		t.Fatalf("idle bank trimmed to %d slots, want %d (clamped slot used)", len(s.IdleTicksPerProc), MaxProcs)
	}
	if s.IdleTicksPerProc[0] != 100 || s.IdleTicksPerProc[2] != 50 || s.IdleTicksPerProc[MaxProcs-1] != 7 {
		t.Errorf("idle ticks = %v", s.IdleTicksPerProc)
	}
}

func TestSweepProgressSnapshot(t *testing.T) {
	sp := NewSweepProgress()
	cells := []string{"(3,50)", "(5,70)"}
	run := sp.StartSweep(cells, 4, 2)

	run.Shard(0).UnitDone(0, 100*time.Millisecond)
	run.Shard(0).UnitDone(0, 100*time.Millisecond)
	run.Shard(0).UnitDone(0, 100*time.Millisecond)
	run.Shard(1).UnitDone(1, 200*time.Millisecond)
	run.Shard(1).UnitDone(1, 200*time.Millisecond)
	run.Shard(0).NoteSchedulable(true)
	run.Shard(0).NoteSchedulable(true)
	run.Shard(1).NoteSchedulable(false)
	sp.SetCurrent(&cells[1])

	s := sp.Snapshot()
	if s.UnitsDone != 5 || s.UnitsTotal != 8 {
		t.Errorf("units %d/%d, want 5/8", s.UnitsDone, s.UnitsTotal)
	}
	if s.Schedulable != 2 || s.Unschedulable != 1 {
		t.Errorf("schedulable %d/%d, want 2/1", s.Schedulable, s.Unschedulable)
	}
	if s.CurrentCell != "(5,70)" {
		t.Errorf("current cell %q", s.CurrentCell)
	}
	if len(s.Cells) != 2 {
		t.Fatalf("cells = %+v", s.Cells)
	}
	if s.Cells[0].Cell != "(3,50)" || s.Cells[0].Units != 3 {
		t.Errorf("cell 0 = %+v", s.Cells[0])
	}
	// 3 units over 0.3s of wall time: 10 systems/s.
	if got := s.Cells[0].SystemsPerSec; got < 9.99 || got > 10.01 {
		t.Errorf("cell 0 rate %.3f, want 10", got)
	}
	if s.ETASec <= 0 {
		t.Errorf("ETA %.3f, want > 0 with 3 units left", s.ETASec)
	}
	if !strings.Contains(s.Line(), "5/8 units") || !strings.Contains(s.Line(), "cell (5,70)") {
		t.Errorf("status line %q", s.Line())
	}

	// A second sweep announcing the same labels merges per-cell stats and
	// extends the total — the -figure all case.
	run2 := sp.StartSweep(cells, 4, 1)
	run2.Shard(0).UnitDone(0, 100*time.Millisecond)
	s = sp.Snapshot()
	if s.UnitsDone != 6 || s.UnitsTotal != 16 {
		t.Errorf("after second sweep: units %d/%d, want 6/16", s.UnitsDone, s.UnitsTotal)
	}
	if len(s.Cells) != 2 || s.Cells[0].Units != 4 {
		t.Errorf("merged cells = %+v", s.Cells)
	}
}

func TestSweepReporter(t *testing.T) {
	sp := NewSweepProgress()
	run := sp.StartSweep([]string{"(2,50)"}, 2, 1)
	var buf bytes.Buffer
	stop := sp.StartReporter(&buf, time.Millisecond)
	run.Shard(0).UnitDone(0, time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	stop()
	stop() // idempotent
	out := buf.String()
	if !strings.Contains(out, "[sweep] 1/2 units") {
		t.Errorf("reporter output %q lacks the status line", out)
	}
	if n := strings.Count(out, "\n"); n < 2 {
		t.Errorf("expected periodic lines plus a final line, got %d", n)
	}
}
