package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestManifestGolden pins the manifest JSON schema: a fully populated
// manifest with every volatile field (times, toolchain, VCS identity,
// output path) normalized must match testdata/manifest.golden.json byte
// for byte. Regenerate with go test ./internal/obs -run Golden -update-golden.
func TestManifestGolden(t *testing.T) {
	fs := flag.NewFlagSet("rtexperiments", flag.ContinueOnError)
	fs.Int("systems", 50, "")
	fs.Int64("seed", 1, "")
	fs.String("csv", "", "")
	if err := fs.Parse([]string{"-seed", "7", "-csv", "results/out", "extra.json"}); err != nil {
		t.Fatal(err)
	}
	m := NewManifest("rtexperiments", fs)

	out := filepath.Join(t.TempDir(), "out-fig12.csv")
	if err := os.WriteFile(out, []byte("n,u,value\n3,0.5,1.25\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m.AddOutput(out)
	m.AddOutput(filepath.Join(t.TempDir(), "missing.csv"))

	st := NewSimStats()
	st.CountEvent(0)
	st.CountEvent(2)
	st.NotePreemption()
	st.NoteContextSwitch()
	st.NoteRGStall(6)
	st.ObserveQueueDepth(12)
	st.AddCascades(2)
	st.AddIdle(0, 40)
	st.NoteLockAcquisition()
	st.NotePriorityBoost()
	st.NoteLockSuspension(9)
	st.NoteRun()
	sim := st.Snapshot()
	m.Sim = &sim

	m.Sweep = &SweepSnapshot{
		UnitsDone: 10, UnitsTotal: 10,
		Schedulable: 9, Unschedulable: 1,
		ElapsedSec: 2.5, SystemsPerSec: 4,
		Cells: []CellStat{{Cell: "(3,50)", Units: 10, WallSec: 2, SystemsPerSec: 5}},
	}

	// Normalize everything that varies per run or machine.
	m.GoVersion = "go1.0-test"
	m.VCSRevision = "deadbeef"
	m.VCSTime = "2026-01-02T03:04:05Z"
	m.VCSModified = false
	m.Start = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	m.End = m.Start.Add(90 * time.Second)
	m.DurationSec = 90
	m.Outputs[0].Path = "out-fig12.csv"
	m.Outputs[1].Path = "missing.csv"
	m.Outputs[1].SHA256 = "error: open missing.csv: no such file or directory"

	got, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "manifest.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	if string(got) != string(want) {
		t.Errorf("manifest JSON drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestManifestWriteFile round-trips a manifest through disk and verifies the
// output checksum against an independent digest.
func TestManifestWriteFile(t *testing.T) {
	dir := t.TempDir()
	data := []byte("hello manifest\n")
	out := filepath.Join(dir, "trace.json")
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m := NewManifest("rtsim", nil)
	m.AddOutput(out)
	m.Finish()
	path := filepath.Join(dir, "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var back Manifest
	if err := json.NewDecoder(f).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}

	if back.Tool != "rtsim" || back.GoVersion == "" {
		t.Errorf("round-trip lost identity: %+v", back)
	}
	if back.End.Before(back.Start) || back.DurationSec < 0 {
		t.Errorf("times inverted: start %v end %v", back.Start, back.End)
	}
	sum := sha256.Sum256(data)
	if len(back.Outputs) != 1 ||
		back.Outputs[0].SHA256 != hex.EncodeToString(sum[:]) ||
		back.Outputs[0].Bytes != int64(len(data)) {
		t.Errorf("output record %+v does not match independent digest", back.Outputs)
	}
}
