// Package obs is the zero-cost-when-disabled runtime observability layer:
// engine counters (SimStats), sweep progress telemetry (SweepProgress), run
// manifests (Manifest), and a live debug HTTP endpoint (ServeDebug).
//
// The design contract, relied on by the simulator's zero-allocation tests:
//
//   - Disabled is free. Every hook in a hot path is guarded by a single
//     nil-pointer check on a concrete type — no interface calls, no
//     closures, no allocation.
//   - Enabled is allocation-free. All counters and histogram buckets are
//     preallocated fixed-size arrays of atomics; observing an event is an
//     uncontended atomic add (or a load-compare for high-water marks).
//   - Readers never pause writers. Snapshots read the atomics directly, so
//     the debug endpoint and the progress reporter can inspect a sweep
//     mid-flight without locks on the hot path.
//
// obs deliberately depends only on the standard library: the simulator
// imports obs, never the reverse, and counter values cross the boundary as
// plain int64s (simulated-time durations are ticks).
package obs

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a cache-line-padded atomic counter. The padding keeps adjacent
// counters in a fixed array (SimStats' per-op and per-processor banks) from
// sharing a line, so parallel sweep workers hammering neighbouring slots do
// not false-share.
type Counter struct {
	v atomic.Int64
	_ [56]byte
}

// Add adds d to the counter.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Store overwrites the value (used by tests and resets, never hot paths).
func (c *Counter) Store(x int64) { c.v.Store(x) }

// Max raises the counter to x if x is larger — the high-water-mark
// operation. The common case (no new maximum) is a single atomic load.
func (c *Counter) Max(x int64) {
	for {
		cur := c.v.Load()
		if x <= cur {
			return
		}
		if c.v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// HistBuckets is the fixed bucket count of a Histogram: power-of-two bucket
// boundaries cover [0, 2^(HistBuckets-1)) with one overflow bucket at the
// top — wide enough for any stall duration the experiments produce while
// keeping the whole histogram preallocated.
const HistBuckets = 24

// Histogram is a fixed-bucket log2 histogram of non-negative int64 samples
// (tick durations). Bucket 0 counts zeros; bucket b >= 1 counts samples in
// [2^(b-1), 2^b); the last bucket absorbs overflow. Observing is one atomic
// add — no locks, no allocation.
type Histogram struct {
	counts [HistBuckets]atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
}

// Observe records one sample (negative samples clamp to zero).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.counts[b].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// HistogramBucket is one populated bucket in a snapshot: Count samples were
// at most UpTo (inclusive upper bound of the bucket's range).
type HistogramBucket struct {
	UpTo  int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the JSON-friendly view of a Histogram.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot returns the populated buckets (empty ones are omitted so small
// manifests stay readable).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.n.Load(), Sum: h.sum.Load()}
	for b := 0; b < HistBuckets; b++ {
		c := h.counts[b].Load()
		if c == 0 {
			continue
		}
		upTo := int64(0)
		if b > 0 {
			upTo = 1<<uint(b) - 1
		}
		s.Buckets = append(s.Buckets, HistogramBucket{UpTo: upTo, Count: c})
	}
	return s
}
