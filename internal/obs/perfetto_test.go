package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// goldenTracer builds a fully deterministic pipeline trace: spans and
// counter samples with literal nanosecond values, two worker arenas, a
// label table, and every argument combination the encoder emits (cell,
// unit, batch, unlabeled).
func goldenTracer() *PipelineTracer {
	tr := NewPipelineTracer()
	base := tr.RegisterLabels([]string{"(3,50)", "(5,70)"})

	a0 := tr.Arena(0)
	a0.Record(SpanWorker, 0, 10_000_000, -1, -1)
	a0.Record(SpanUnit, 1_000_000, 3_500_000, base, 0)
	a0.Record(SpanGenerate, 1_000_000, 1_200_000, base, 0)
	a0.Record(SpanAnalyze, 1_200_000, 1_700_000, base, 0)
	a0.Record(SpanSimulate, 1_700_000, 3_000_000, base, 0)
	a0.Record(SpanRun, 1_750_000, 2_300_000, base, 0)
	a0.Record(SpanCommit, 3_100_000, 3_400_000, base, 0)
	a0.Record(SpanTurnstileWait, 3_000_000, 3_100_000, base, 0)

	a1 := tr.Arena(1)
	a1.Record(SpanWorker, 500, 9_000_000, -1, -1)
	a1.RecordBatched(SpanBatchSpan, 1_000_000, 6_000_000, base+1, 1, 3)
	a1.RecordBatched(SpanBatchPass, 2_000_000, 5_000_000, base+1, -1, 12)

	tr.samples = append(tr.samples,
		counterSample{ts: 2_000_000, unitsDone: 1, rate: 125.5, schedFrac: 1},
		counterSample{ts: 4_000_000, unitsDone: 4, rate: 250, schedFrac: 0.75},
	)
	return tr
}

// TestPerfettoGolden pins the encoder byte for byte: event order, key
// order, microsecond rendering, argument emission, and counter formatting
// must all stay stable so committed traces diff cleanly across versions.
// Regenerate with -update-golden after an intentional format change.
func TestPerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "perfetto_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create the fixture)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Perfetto output differs from golden fixture:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestPerfettoParses loads the export back through encoding/json and checks
// the structural invariants Perfetto needs: a traceEvents array, metadata
// naming both worker tracks, and slices sorted so parents precede children
// on each track.
func TestPerfettoParses(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Name string          `json:"name"`
			TS   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var meta, slices, counters int
	lastStart := map[int]float64{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			slices++
			if e.TS < lastStart[e.Tid] {
				t.Errorf("tid %d slice %q at ts %v emitted after a later start %v",
					e.Tid, e.Name, e.TS, lastStart[e.Tid])
			}
			lastStart[e.Tid] = e.TS
		case "C":
			counters++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if meta != 3 { // process_name + two worker thread_names
		t.Errorf("%d metadata events, want 3", meta)
	}
	if slices != 11 {
		t.Errorf("%d slices, want 11", slices)
	}
	if counters != 6 { // 2 samples x 3 series
		t.Errorf("%d counter events, want 6", counters)
	}
}

// TestMicros pins the exact-microsecond rendering, including negatives and
// sub-microsecond remainders.
func TestMicros(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{
		{0, "0.000"},
		{1, "0.001"},
		{999, "0.999"},
		{1000, "1.000"},
		{1234567, "1234.567"},
		{-1500, "-1.500"},
	}
	for _, c := range cases {
		if got := micros(c.ns); got != c.want {
			t.Errorf("micros(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}
