// Fleet sweeps a small grid of generated workloads through the public API —
// a miniature of the paper's §5 evaluation — and prints the three ratio
// figures side by side for one utilization column.
//
// Run with:
//
//	go run ./examples/fleet [-systems 5] [-util 0.7]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rtsync"
	"rtsync/internal/experiments"
	"rtsync/internal/report"
)

func main() {
	systems := flag.Int("systems", 5, "systems per configuration")
	util := flag.Float64("util", 0.7, "per-processor utilization")
	flag.Parse()
	if err := run(*systems, *util); err != nil {
		log.Fatal(err)
	}
}

func run(systems int, util float64) error {
	var configs []rtsync.WorkloadConfig
	for n := 2; n <= 8; n += 2 {
		configs = append(configs, rtsync.DefaultWorkloadConfig(n, util))
	}
	res, err := rtsync.AvgEERStudy(rtsync.ExperimentParams{
		Configs:          configs,
		SystemsPerConfig: systems,
		Seed:             7,
		HorizonPeriods:   10,
	})
	if err != nil {
		return err
	}

	t := report.NewTable(
		fmt.Sprintf("average-EER ratios at U=%.0f%% (%d systems per N)", util*100, systems),
		"N", "PM/DS (fig 14)", "RG/DS (fig 15)", "PM/RG (fig 16)", "RG1/RG (ablation)")
	uPct := int(util*100 + 0.5)
	for n := 2; n <= 8; n += 2 {
		k := experiments.CellKey{N: n, U: uPct}
		cell := func(g *experiments.Grid) string {
			s, ok := g.Cells[k]
			if !ok || s.N() == 0 {
				return "-"
			}
			return fmt.Sprintf("%.3f ± %.3f", s.Mean(), s.CI(0.90))
		}
		t.AddRow(fmt.Sprintf("%d", n), cell(res.PMDS), cell(res.RGDS), cell(res.PMRG), cell(res.RG1RG))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nExpected shapes (paper §5.3): PM/DS grows with N toward 3-4;")
	fmt.Println("RG/DS stays in [1,2]; PM/RG is consistently above 1, reaching 2-3.")
	return nil
}
