// Quickstart: analyze and simulate the paper's Example 2 under every
// synchronization protocol through the public rtsync API.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"rtsync"
	"rtsync/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys := rtsync.Example2()
	fmt.Printf("system: %v\n\n", sys)

	// Worst-case analysis: SA/PM bounds hold for PM, MPM and RG
	// (Theorem 1); SA/DS bounds hold for DS.
	pmRes, err := rtsync.AnalyzePM(sys)
	if err != nil {
		return err
	}
	dsRes, err := rtsync.AnalyzeDS(sys)
	if err != nil {
		return err
	}

	bounds, err := rtsync.BoundsFrom(pmRes)
	if err != nil {
		return err
	}
	protocols := []rtsync.Protocol{
		rtsync.NewDS(),
		rtsync.NewPM(bounds),
		rtsync.NewMPM(bounds),
		rtsync.NewRG(),
	}

	t := report.NewTable("Example 2 — protocols compared (horizon 600)",
		"protocol", "task", "analyzed bound", "avg EER", "max EER", "misses")
	for _, protocol := range protocols {
		out, err := rtsync.Simulate(sys, rtsync.SimConfig{
			Protocol: protocol,
			Horizon:  600,
		})
		if err != nil {
			return err
		}
		for i := range sys.Tasks {
			bound := pmRes.TaskEER[i]
			if protocol.Name() == "DS" {
				bound = dsRes.TaskEER[i]
			}
			tm := &out.Metrics.Tasks[i]
			t.AddRowf(protocol.Name(), sys.Tasks[i].Name, bound.String(),
				tm.AvgEER(), tm.MaxEER.String(), tm.DeadlineMisses)
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Println("\nObservations (matching §3 of the paper):")
	fmt.Println("  - Under DS, T3 misses deadlines; under PM/MPM/RG it never does.")
	fmt.Println("  - DS has the shortest average EER for the chain task T2;")
	fmt.Println("    RG sits between DS and PM.")
	fmt.Println("  - Every observed max EER is within its analyzed bound.")
	return nil
}
