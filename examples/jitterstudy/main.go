// Jitterstudy contrasts the protocols on output jitter (§2 and §6 of the
// paper): PM/MPM bound a task's output jitter by the response-time bound of
// its last subtask, while RG's and DS's jitter can approach the worst-case
// EER time. The study generates one paper-style workload and reports
// per-task output jitter under each protocol.
//
// Run with:
//
//	go run ./examples/jitterstudy
package main

import (
	"fmt"
	"log"
	"os"

	"rtsync"
	"rtsync/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := rtsync.DefaultWorkloadConfig(5, 0.7)
	cfg.Seed = 2026
	sys, err := rtsync.GenerateWorkload(cfg)
	if err != nil {
		return err
	}
	pmRes, err := rtsync.AnalyzePM(sys)
	if err != nil {
		return err
	}
	bounds, err := rtsync.BoundsFrom(pmRes)
	if err != nil {
		return err
	}

	horizon := rtsync.Time(int64(sys.MaxPeriod()) * 30)
	protocols := []rtsync.Protocol{rtsync.NewDS(), rtsync.NewRG(), rtsync.NewPM(bounds)}
	jitter := make(map[string][]rtsync.Duration, len(protocols))
	for _, p := range protocols {
		out, err := rtsync.Simulate(sys, rtsync.SimConfig{Protocol: p, Horizon: horizon})
		if err != nil {
			return err
		}
		js := make([]rtsync.Duration, len(sys.Tasks))
		for i := range sys.Tasks {
			js[i] = out.Metrics.Tasks[i].MaxOutputJitter
		}
		jitter[p.Name()] = js
	}

	t := report.NewTable(
		fmt.Sprintf("output jitter per task — workload %s, horizon %d periods", cfg.Label(), 30),
		"task", "period", "DS jitter", "RG jitter", "PM jitter", "PM bound R(i,n)")
	var pmWorse int
	for i := range sys.Tasks {
		lastID := rtsync.SubtaskID{Task: i, Sub: len(sys.Tasks[i].Subtasks) - 1}
		lastBound := pmRes.Bound(lastID).Response
		t.AddRowf(sys.Tasks[i].Name, sys.Tasks[i].Period.String(),
			jitter["DS"][i].String(), jitter["RG"][i].String(),
			jitter["PM"][i].String(), lastBound.String())
		// §3.1: PM's output jitter is bounded by R(i, n_i).
		if jitter["PM"][i] > lastBound {
			return fmt.Errorf("task %d: PM jitter %v exceeds its analytical bound %v",
				i, jitter["PM"][i], lastBound)
		}
		if jitter["PM"][i] > jitter["RG"][i] {
			pmWorse++
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\ntasks where PM jitter exceeded RG jitter: %d of %d\n", pmWorse, len(sys.Tasks))
	fmt.Println("PM trades long average EER times for tightly bounded output jitter;")
	fmt.Println("favor it when §6's \"small output jitters\" requirement dominates.")
	return nil
}
