// Example2 reproduces the paper's schedule figures as ASCII gantt charts:
// Figure 3 (DS protocol — T3 misses its deadline at time 10), Figure 5
// (PM protocol — T2,2 released periodically from phase 4), and Figure 7
// (RG protocol — the second T2,2 instance held by its guard, then released
// at the idle point 9).
//
// Run with:
//
//	go run ./examples/example2
package main

import (
	"fmt"
	"log"

	"rtsync"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys := rtsync.Example2()
	pmRes, err := rtsync.AnalyzePM(sys)
	if err != nil {
		return err
	}
	bounds, err := rtsync.BoundsFrom(pmRes)
	if err != nil {
		return err
	}

	figures := []struct {
		title    string
		protocol rtsync.Protocol
		note     string
	}{
		{
			title:    "Figure 3 — the DS protocol",
			protocol: rtsync.NewDS(),
			note: "T2,2 is released whenever T2,1 completes (4, 8, 16, ...);\n" +
				"the clumped releases at 4 and 8 preempt T3 twice and it\n" +
				"misses its deadline at time 10 (completes at 12).",
		},
		{
			title:    "Figure 5 — the PM protocol",
			protocol: rtsync.NewPM(bounds),
			note: "T2,2 is released strictly periodically from phase\n" +
				"f(2,2) = R(2,1) = 4; T3 completes at 9 and meets its deadline.",
		},
		{
			title:    "Figure 7 — the RG protocol",
			protocol: rtsync.NewRG(),
			note: "The signal for T2,2's second instance arrives at 8 but the\n" +
				"release guard holds it (g = 10); T3 finishes at 9, making 9 an\n" +
				"idle point, rule 2 resets the guard, and T2,2 releases at 9.",
		},
	}

	for _, fig := range figures {
		out, err := rtsync.Simulate(sys, rtsync.SimConfig{
			Protocol: fig.protocol,
			Horizon:  30,
			Trace:    true,
		})
		if err != nil {
			return err
		}
		fmt.Println(fig.title)
		fmt.Println()
		fmt.Print(rtsync.RenderGantt(out.Trace, rtsync.GanttOptions{To: 14, RulerEvery: 5}))
		fmt.Println()
		fmt.Println(fig.note)
		fmt.Printf("T3 deadline misses: %d\n\n", out.Metrics.Tasks[2].DeadlineMisses)
	}

	fmt.Println("§4.3 — Algorithm SA/DS on this system:")
	dsRes, err := rtsync.AnalyzeDS(sys)
	if err != nil {
		return err
	}
	for i := range sys.Tasks {
		fmt.Printf("  EER bound of %s under DS: %v (deadline %v)\n",
			sys.Tasks[i].Name, dsRes.TaskEER[i], sys.Tasks[i].Deadline)
	}
	fmt.Println("\nT3's bound exceeds its deadline, so its schedulability cannot be")
	fmt.Println("asserted under DS — and indeed Figure 3 shows the miss. (The paper's")
	fmt.Println("prose quotes 7 for this bound; the pseudo-code of Algorithm IEERT")
	fmt.Println("yields 8, which matches the actual worst case. See EXPERIMENTS.md.)")
	return nil
}
