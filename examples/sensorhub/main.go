// Sensorhub exercises the shared-resource extension (§6's "resource
// contention" future-work item): three sampling chains on a hub CPU share
// one I2C bus driver lock, held for each sampler's whole execution. The
// simulator runs the lock under priority-ceiling emulation (Highest
// Locker); the analysis charges the classical once-per-job blocking bound;
// and the trace validator proves mutual exclusion held.
//
// Run with:
//
//	go run ./examples/sensorhub
package main

import (
	"fmt"
	"log"
	"os"

	"rtsync"
	"rtsync/internal/report"
	"rtsync/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildSystem() (*rtsync.System, error) {
	b := rtsync.NewBuilder()
	hub := b.AddProcessor("hub")
	dsp := b.AddProcessor("dsp")
	i2c := b.AddResource("i2c")

	// Three sampling chains: sample on the hub (holding the bus driver
	// lock), then post-process on the DSP.
	b.AddTask("gyro", 100, 0).
		Subtask(hub, 5, 0).Locking(i2c).
		Subtask(dsp, 10, 0).
		Done()
	b.AddTask("accel", 200, 0).
		Subtask(hub, 8, 0).Locking(i2c).
		Subtask(dsp, 15, 0).
		Done()
	b.AddTask("baro", 400, 0).
		Subtask(hub, 20, 0).Locking(i2c).
		Subtask(dsp, 10, 0).
		Done()
	// Lock-free housekeeping on the hub, squeezed between the samplers.
	b.AddTask("health", 400, 0).Subtask(hub, 25, 0).Done()

	sys, err := b.Build()
	if err != nil {
		return nil, err
	}
	if err := rtsync.AssignPriorities(sys, rtsync.ProportionalDeadline); err != nil {
		return nil, err
	}
	return sys, nil
}

func run() error {
	sys, err := buildSystem()
	if err != nil {
		return err
	}

	res, err := rtsync.AnalyzePM(sys)
	if err != nil {
		return err
	}
	out, err := rtsync.Simulate(sys, rtsync.SimConfig{
		Protocol: rtsync.NewRG(),
		Horizon:  40000,
		Trace:    true,
	})
	if err != nil {
		return err
	}
	if problems := rtsync.ValidateTrace(out.Trace, sim.ValidateOptions{CheckPrecedence: true}); len(problems) > 0 {
		return fmt.Errorf("trace invariants failed: %v", problems)
	}

	t := report.NewTable("sensor hub with a shared I2C driver lock (RG protocol)",
		"task", "period", "EER bound (blocking-aware)", "sim max EER", "misses")
	for i := range sys.Tasks {
		tm := &out.Metrics.Tasks[i]
		t.AddRowf(sys.Tasks[i].Name, sys.Tasks[i].Period.String(),
			res.TaskEER[i].String(), tm.MaxEER.String(), tm.DeadlineMisses)
		if rtsync.Duration(tm.MaxEER) > res.TaskEER[i] {
			return fmt.Errorf("%s: observed %v exceeds bound %v",
				sys.Tasks[i].Name, tm.MaxEER, res.TaskEER[i])
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Println("\nThe gyro chain's bound includes one worst-case blocking term (the")
	fmt.Println("baro sampler's 20-tick critical section): while baro holds the bus it")
	fmt.Println("runs at the lock's priority ceiling and cannot be preempted by gyro.")
	fmt.Println("The trace validator confirmed no two critical sections overlapped and")
	fmt.Println("every observed end-to-end response stayed within its analyzed bound.")
	return nil
}
