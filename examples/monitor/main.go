// Monitor models the paper's Example 1 — a monitor task that samples a
// remote sensor, transfers the sample over a communication link, and
// displays it — with the link modeled two ways (§2 of the paper):
//
//  1. as an ordinary preemptive "link processor", and
//  2. as a CAN-style non-preemptive bus, using the blocking-aware analysis
//     (extension A4): a frame in flight cannot be preempted, so a
//     higher-priority message can be blocked for one lower-priority frame.
//
// Run with:
//
//	go run ./examples/monitor
package main

import (
	"fmt"
	"log"
	"os"

	"rtsync"
	"rtsync/internal/analysis"
	"rtsync/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// buildSystem assembles the monitor scenario: the three-subtask monitor
// chain plus competing traffic, with the link preemptive or not.
func buildSystem(preemptiveLink bool) (*rtsync.System, error) {
	b := rtsync.NewBuilder()
	field := b.AddProcessor("field")
	var link int
	if preemptiveLink {
		link = b.AddProcessor("link")
	} else {
		link = b.AddLink("link")
	}
	central := b.AddProcessor("central")

	// The monitor task: sample -> transfer -> display, period 100.
	b.AddTask("monitor", 100, 0).
		Subtask(field, 10, 0).
		Subtask(link, 20, 0).
		Subtask(central, 10, 0).
		Done()
	// A bulk logging transfer hogging the bus with long frames.
	b.AddTask("bulk", 200, 0).Subtask(link, 60, 0).Done()
	// Local work on the end processors.
	b.AddTask("fieldio", 50, 0).Subtask(field, 10, 0).Done()
	b.AddTask("render", 50, 0).Subtask(central, 15, 0).Done()

	sys, err := b.Build()
	if err != nil {
		return nil, err
	}
	if err := rtsync.AssignPriorities(sys, rtsync.ProportionalDeadline); err != nil {
		return nil, err
	}
	return sys, nil
}

func run() error {
	t := report.NewTable("Example 1 — monitor task over a shared link",
		"link model", "analysis", "EER bound (monitor)", "sim max EER", "sim avg EER")

	for _, preemptive := range []bool{true, false} {
		sys, err := buildSystem(preemptive)
		if err != nil {
			return err
		}
		res, err := rtsync.AnalyzePM(sys)
		if err != nil {
			return err
		}
		bounds, err := rtsync.BoundsFrom(res)
		if err != nil {
			return err
		}
		out, err := rtsync.Simulate(sys, rtsync.SimConfig{
			Protocol: rtsync.NewRG(),
			Horizon:  20000,
		})
		if err != nil {
			return err
		}
		label := "preemptive"
		aLabel := "SA/PM"
		if !preemptive {
			label = "CAN-style (non-preemptive)"
			aLabel = "SA/PM + blocking"
		}
		tm := &out.Metrics.Tasks[0]
		t.AddRowf(label, aLabel, res.TaskEER[0].String(), tm.MaxEER.String(), tm.AvgEER())
		_ = bounds

		// Soundness check: the observed worst case must respect the
		// bound even with the non-preemptive bus.
		if rtsync.Duration(tm.MaxEER) > res.TaskEER[0] {
			return fmt.Errorf("%s: observed EER %v exceeds bound %v",
				label, tm.MaxEER, res.TaskEER[0])
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Println("\nThe non-preemptive bus inflates the transfer subtask's bound by one")
	fmt.Println("bulk frame (60 ticks): the blocking-aware analysis absorbs it while")
	fmt.Println("staying sound against the simulated worst case.")

	// Show the blocking-aware subtask bounds explicitly.
	sys, err := buildSystem(false)
	if err != nil {
		return err
	}
	res, err := analysis.AnalyzePM(sys, analysis.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Println()
	sub := report.NewTable("monitor chain bounds on the CAN-style bus",
		"subtask", "processor", "exec", "response bound")
	for j := range sys.Tasks[0].Subtasks {
		id := rtsync.SubtaskID{Task: 0, Sub: j}
		st := sys.Subtask(id)
		sub.AddRowf(id.String(), sys.Procs[st.Proc].Name, st.Exec.String(),
			res.Bound(id).Response.String())
	}
	return sub.Render(os.Stdout)
}
