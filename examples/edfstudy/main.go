// Edfstudy contrasts the paper's fixed-priority setting with
// dynamic-priority (EDF) end-to-end scheduling — the discipline of the
// jitter-EDD line of work §1 positions the paper against. On Example 2,
// fixed priorities cannot bound T2's end-to-end response below 7 (> its
// deadline 6) under ANY of the paper's protocols, while EDF over
// proportional local deadlines certifies the whole system.
//
// Run with:
//
//	go run ./examples/edfstudy
package main

import (
	"fmt"
	"log"
	"os"

	"rtsync"
	"rtsync/internal/report"
	"rtsync/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys := rtsync.Example2()
	if err := rtsync.AssignLocalDeadlines(sys, rtsync.ProportionalSlice); err != nil {
		return err
	}

	fp, err := rtsync.AnalyzePM(sys) // fixed-priority bounds (PM/MPM/RG)
	if err != nil {
		return err
	}
	edf, err := rtsync.AnalyzeEDF(sys) // EDF demand-bound certification
	if err != nil {
		return err
	}

	t := report.NewTable("Example 2 — fixed priority vs EDF (RG protocol)",
		"task", "deadline", "FP bound", "EDF bound", "FP sim max", "EDF sim max")
	simulate := func(sched rtsync.Scheduler) (*rtsync.Metrics, error) {
		out, err := rtsync.Simulate(sys, rtsync.SimConfig{
			Protocol:  rtsync.NewRG(),
			Scheduler: sched,
			Horizon:   600,
			Trace:     true,
		})
		if err != nil {
			return nil, err
		}
		if problems := rtsync.ValidateTrace(out.Trace, sim.ValidateOptions{CheckPrecedence: true}); len(problems) > 0 {
			return nil, fmt.Errorf("%v: %v", sched, problems)
		}
		return out.Metrics, nil
	}
	fpSim, err := simulate(rtsync.FixedPriorityScheduler)
	if err != nil {
		return err
	}
	edfSim, err := simulate(rtsync.EDFScheduler)
	if err != nil {
		return err
	}
	for i := range sys.Tasks {
		t.AddRowf(sys.Tasks[i].Name, sys.Tasks[i].Deadline.String(),
			fp.TaskEER[i].String(), edf.TaskEER[i].String(),
			fpSim.Tasks[i].MaxEER.String(), edfSim.Tasks[i].MaxEER.String())
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Println("\nFixed priorities leave T2 uncertifiable (bound 7 > deadline 6, and the")
	fmt.Println("simulation attains 7); EDF over proportional local deadlines certifies")
	fmt.Println("every task (T2 bound 6) and the simulated worst cases respect it.")
	fmt.Printf("\nFP schedulable: %v   EDF schedulable: %v\n",
		fp.AllSchedulable(sys), edf.AllSchedulable(sys))
	return nil
}
