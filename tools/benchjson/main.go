// Command benchjson reruns benchmark packages and rewrites the "after"
// section of a BENCH_*.json trajectory file in place, preserving the
// hand-written description, the frozen "before" capture, and the notes.
//
// Usage (what `make bench-analysis` runs):
//
//	go run ./tools/benchjson -out BENCH_analysis.json \
//	    -pkg ./internal/analysis -bench BenchmarkAnalyze -benchtime 10x
//
// -pkg takes a comma-separated package list; results merge into one "after"
// map. Benchmarks reporting a custom ns/event metric keep it as "ns_event".
//
// A baseline that names a benchmark the run no longer produces fails the
// command loudly: a renamed or deleted benchmark must be renamed in its
// BENCH_*.json in the same change, or the trajectory silently rots. -check
// verifies that property (at -benchtime 1x in CI) without rewriting the
// file.
//
// -max-regress and -max-regress-allocs turn -check into a regression gate:
// each fresh measurement is compared against the committed "after" baseline
// and the command fails if ns/op or ns/event regresses by more than
// -max-regress percent, or allocs/op by more than -max-regress-allocs
// percent (plus an absolute slack of 2 allocs, so tiny baselines don't trip
// on noise). Thresholded runs only make sense at the same -benchtime the
// baseline was captured with — a 1x run measures cold-start, not steady
// state. An intentional regression re-baselines with -update, which accepts
// the new numbers and rewrites the file (`make bench-check UPDATE=1`).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches `go test -benchmem` output, with or without a custom
// ns/event metric between ns/op and B/op, e.g.
//
//	BenchmarkAnalyzeDS-8   10   9264590 ns/op   125884 B/op   77 allocs/op
//	BenchmarkEngineEvents  10   1056770 ns/op   171.3 ns/event   13448 B/op   36 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op(?:\s+(\d+(?:\.\d+)?) ns/event)?\s+(\d+) B/op\s+(\d+) allocs/op`)

type measurement struct {
	NsOp     float64 `json:"ns_op"`
	NsEvent  float64 `json:"ns_event,omitempty"`
	BOp      int64   `json:"B_op"`
	AllocsOp int64   `json:"allocs_op"`
}

type trajectory struct {
	Description string                 `json:"description"`
	Before      map[string]measurement `json:"before"`
	After       map[string]measurement `json:"after"`
	Notes       []string               `json:"notes"`
}

func main() {
	var (
		out        = flag.String("out", "BENCH_analysis.json", "trajectory file to update in place")
		pkg        = flag.String("pkg", "./internal/analysis", "comma-separated packages whose benchmarks to run")
		bench      = flag.String("bench", "BenchmarkAnalyze", "benchmark name regexp")
		benchtime  = flag.String("benchtime", "10x", "go test -benchtime value")
		check      = flag.Bool("check", false, "verify baseline benchmarks still exist; do not rewrite -out")
		maxRegress = flag.Float64("max-regress", 0,
			"fail if ns/op or ns/event regresses more than this percent vs the committed after baseline (0 disables; run at the baseline's -benchtime)")
		maxRegressAllocs = flag.Float64("max-regress-allocs", 0,
			"fail if allocs/op regresses more than this percent plus 2 allocs absolute slack vs the committed after baseline (0 disables)")
		update = flag.Bool("update", false,
			"accept regressions beyond the thresholds and rewrite -out with the new numbers (the intentional-regression escape hatch)")
	)
	flag.Parse()
	if err := run(*out, *pkg, *bench, *benchtime, *check, *update, *maxRegress, *maxRegressAllocs); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out, pkgs, bench, benchtime string, check, update bool, maxRegress, maxRegressAllocs float64) error {
	after := make(map[string]measurement)
	for _, pkg := range strings.Split(pkgs, ",") {
		cmd := exec.Command("go", "test", "-run", "NONE", "-bench", bench,
			"-benchmem", "-benchtime", benchtime, pkg)
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("go test %s: %w", pkg, err)
		}
		parse(string(raw), after)
	}
	if len(after) == 0 {
		return fmt.Errorf("no benchmark lines matched %q in %s", bench, pkgs)
	}

	var t trajectory
	if prev, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(prev, &t); err != nil {
			return fmt.Errorf("parse existing %s: %w", out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if missing := missingBaselines(&t, after, bench); len(missing) > 0 {
		return fmt.Errorf("baseline %s names benchmarks the run no longer produces: %s\n"+
			"(a renamed or deleted benchmark must be renamed in %s in the same change)",
			out, strings.Join(missing, ", "), out)
	}
	if maxRegress > 0 || maxRegressAllocs > 0 {
		if regressions := findRegressions(t.After, after, maxRegress, maxRegressAllocs); len(regressions) > 0 {
			if !update {
				return fmt.Errorf("performance regressions vs %s:\n  %s\n"+
					"(an intentional regression re-baselines with -update)",
					out, strings.Join(regressions, "\n  "))
			}
			fmt.Printf("%s: accepting %d regressions (-update)\n", out, len(regressions))
		}
	}
	if check && !update {
		fmt.Printf("%s: all %d baseline benchmarks still exist\n", out, len(after))
		return nil
	}
	t.After = after

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false) // keep "->" in notes readable
	enc.SetIndent("", "  ")
	if err := enc.Encode(&t); err != nil {
		return err
	}
	if err := os.WriteFile(out, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("updated %s: %d after-benchmarks\n", out, len(after))
	return nil
}

// missingBaselines returns every benchmark named in the trajectory's before
// or after maps that matches the -bench regexp but is absent from the new
// results — i.e. baselines the current run should have reproduced and
// didn't. Baseline entries outside the regexp are someone else's run
// (a trajectory can aggregate several `make bench-*` invocations).
func missingBaselines(t *trajectory, after map[string]measurement, bench string) []string {
	re, err := regexp.Compile(bench)
	if err != nil {
		return nil // go test would have rejected it already
	}
	seen := map[string]bool{}
	var missing []string
	for _, baseline := range []map[string]measurement{t.Before, t.After} {
		for name := range baseline {
			// Sub-benchmark regexps match per path element, like go test.
			if _, ok := after[name]; !ok && !seen[name] && re.MatchString(strings.SplitN(name, "/", 2)[0]) {
				seen[name] = true
				missing = append(missing, name)
			}
		}
	}
	sort.Strings(missing)
	return missing
}

// allocSlack is the absolute allocs/op headroom added on top of the
// percentage threshold, so one stray allocation against a single-digit
// baseline doesn't read as a blown budget.
const allocSlack = 2

// findRegressions compares the fresh measurements against the committed
// baseline and describes every one that exceeds the thresholds. Benchmarks
// with no baseline entry (new this change) pass; missing-baseline detection
// is missingBaselines' job.
func findRegressions(base, after map[string]measurement, pct, apct float64) []string {
	names := make([]string, 0, len(after))
	for name := range after {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var regressions []string
	for _, name := range names {
		b, n := base[name], after[name]
		if pct > 0 && b.NsOp > 0 && n.NsOp > b.NsOp*(1+pct/100) {
			regressions = append(regressions, fmt.Sprintf("%s: ns/op %.0f -> %.0f (+%.1f%%, limit %g%%)",
				name, b.NsOp, n.NsOp, 100*(n.NsOp/b.NsOp-1), pct))
		}
		if pct > 0 && b.NsEvent > 0 && n.NsEvent > b.NsEvent*(1+pct/100) {
			regressions = append(regressions, fmt.Sprintf("%s: ns/event %.1f -> %.1f (+%.1f%%, limit %g%%)",
				name, b.NsEvent, n.NsEvent, 100*(n.NsEvent/b.NsEvent-1), pct))
		}
		if apct > 0 && float64(n.AllocsOp) > float64(b.AllocsOp)*(1+apct/100)+allocSlack {
			regressions = append(regressions, fmt.Sprintf("%s: allocs/op %d -> %d (limit %g%% + %d)",
				name, b.AllocsOp, n.AllocsOp, apct, allocSlack))
		}
	}
	return regressions
}

// parse extracts name -> measurement from go test -benchmem output into res.
func parse(out string, res map[string]measurement) {
	start := 0
	for i := 0; i <= len(out); i++ {
		if i == len(out) || out[i] == '\n' {
			if m := benchLine.FindStringSubmatch(out[start:i]); m != nil {
				ns, _ := strconv.ParseFloat(m[2], 64)
				nsev, _ := strconv.ParseFloat(m[3], 64)
				b, _ := strconv.ParseInt(m[4], 10, 64)
				a, _ := strconv.ParseInt(m[5], 10, 64)
				res[m[1]] = measurement{NsOp: ns, NsEvent: nsev, BOp: b, AllocsOp: a}
			}
			start = i + 1
		}
	}
}
