// Command benchjson reruns benchmark packages and rewrites the "after"
// section of a BENCH_*.json trajectory file in place, preserving the
// hand-written description, the frozen "before" capture, and the notes.
//
// Usage (what `make bench-analysis` runs):
//
//	go run ./tools/benchjson -out BENCH_analysis.json \
//	    -pkg ./internal/analysis -bench BenchmarkAnalyze -benchtime 10x
//
// -pkg takes a comma-separated package list; results merge into one "after"
// map. Benchmarks reporting a custom ns/event metric keep it as "ns_event".
//
// A baseline that names a benchmark the run no longer produces fails the
// command loudly: a renamed or deleted benchmark must be renamed in its
// BENCH_*.json in the same change, or the trajectory silently rots. -check
// verifies that property (at -benchtime 1x in CI) without rewriting the
// file.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches `go test -benchmem` output, with or without a custom
// ns/event metric between ns/op and B/op, e.g.
//
//	BenchmarkAnalyzeDS-8   10   9264590 ns/op   125884 B/op   77 allocs/op
//	BenchmarkEngineEvents  10   1056770 ns/op   171.3 ns/event   13448 B/op   36 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op(?:\s+(\d+(?:\.\d+)?) ns/event)?\s+(\d+) B/op\s+(\d+) allocs/op`)

type measurement struct {
	NsOp     float64 `json:"ns_op"`
	NsEvent  float64 `json:"ns_event,omitempty"`
	BOp      int64   `json:"B_op"`
	AllocsOp int64   `json:"allocs_op"`
}

type trajectory struct {
	Description string                 `json:"description"`
	Before      map[string]measurement `json:"before"`
	After       map[string]measurement `json:"after"`
	Notes       []string               `json:"notes"`
}

func main() {
	var (
		out       = flag.String("out", "BENCH_analysis.json", "trajectory file to update in place")
		pkg       = flag.String("pkg", "./internal/analysis", "comma-separated packages whose benchmarks to run")
		bench     = flag.String("bench", "BenchmarkAnalyze", "benchmark name regexp")
		benchtime = flag.String("benchtime", "10x", "go test -benchtime value")
		check     = flag.Bool("check", false, "verify baseline benchmarks still exist; do not rewrite -out")
	)
	flag.Parse()
	if err := run(*out, *pkg, *bench, *benchtime, *check); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out, pkgs, bench, benchtime string, check bool) error {
	after := make(map[string]measurement)
	for _, pkg := range strings.Split(pkgs, ",") {
		cmd := exec.Command("go", "test", "-run", "NONE", "-bench", bench,
			"-benchmem", "-benchtime", benchtime, pkg)
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("go test %s: %w", pkg, err)
		}
		parse(string(raw), after)
	}
	if len(after) == 0 {
		return fmt.Errorf("no benchmark lines matched %q in %s", bench, pkgs)
	}

	var t trajectory
	if prev, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(prev, &t); err != nil {
			return fmt.Errorf("parse existing %s: %w", out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if missing := missingBaselines(&t, after, bench); len(missing) > 0 {
		return fmt.Errorf("baseline %s names benchmarks the run no longer produces: %s\n"+
			"(a renamed or deleted benchmark must be renamed in %s in the same change)",
			out, strings.Join(missing, ", "), out)
	}
	if check {
		fmt.Printf("%s: all %d baseline benchmarks still exist\n", out, len(after))
		return nil
	}
	t.After = after

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false) // keep "->" in notes readable
	enc.SetIndent("", "  ")
	if err := enc.Encode(&t); err != nil {
		return err
	}
	if err := os.WriteFile(out, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("updated %s: %d after-benchmarks\n", out, len(after))
	return nil
}

// missingBaselines returns every benchmark named in the trajectory's before
// or after maps that matches the -bench regexp but is absent from the new
// results — i.e. baselines the current run should have reproduced and
// didn't. Baseline entries outside the regexp are someone else's run
// (a trajectory can aggregate several `make bench-*` invocations).
func missingBaselines(t *trajectory, after map[string]measurement, bench string) []string {
	re, err := regexp.Compile(bench)
	if err != nil {
		return nil // go test would have rejected it already
	}
	seen := map[string]bool{}
	var missing []string
	for _, baseline := range []map[string]measurement{t.Before, t.After} {
		for name := range baseline {
			// Sub-benchmark regexps match per path element, like go test.
			if _, ok := after[name]; !ok && !seen[name] && re.MatchString(strings.SplitN(name, "/", 2)[0]) {
				seen[name] = true
				missing = append(missing, name)
			}
		}
	}
	sort.Strings(missing)
	return missing
}

// parse extracts name -> measurement from go test -benchmem output into res.
func parse(out string, res map[string]measurement) {
	start := 0
	for i := 0; i <= len(out); i++ {
		if i == len(out) || out[i] == '\n' {
			if m := benchLine.FindStringSubmatch(out[start:i]); m != nil {
				ns, _ := strconv.ParseFloat(m[2], 64)
				nsev, _ := strconv.ParseFloat(m[3], 64)
				b, _ := strconv.ParseInt(m[4], 10, 64)
				a, _ := strconv.ParseInt(m[5], 10, 64)
				res[m[1]] = measurement{NsOp: ns, NsEvent: nsev, BOp: b, AllocsOp: a}
			}
			start = i + 1
		}
	}
}
