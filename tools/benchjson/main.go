// Command benchjson reruns a benchmark package and rewrites the "after"
// section of a BENCH_*.json trajectory file in place, preserving the
// hand-written description, the frozen "before" capture, and the notes.
//
// Usage (what `make bench-analysis` runs):
//
//	go run ./tools/benchjson -out BENCH_analysis.json \
//	    -pkg ./internal/analysis -bench BenchmarkAnalyze -benchtime 10x
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
)

// benchLine matches `go test -benchmem` output, e.g.
// BenchmarkAnalyzeDS-8   10   9264590 ns/op   125884 B/op   77 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op\s+(\d+) B/op\s+(\d+) allocs/op`)

type measurement struct {
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"B_op"`
	AllocsOp int64   `json:"allocs_op"`
}

type trajectory struct {
	Description string                 `json:"description"`
	Before      map[string]measurement `json:"before"`
	After       map[string]measurement `json:"after"`
	Notes       []string               `json:"notes"`
}

func main() {
	var (
		out       = flag.String("out", "BENCH_analysis.json", "trajectory file to update in place")
		pkg       = flag.String("pkg", "./internal/analysis", "package whose benchmarks to run")
		bench     = flag.String("bench", "BenchmarkAnalyze", "benchmark name regexp")
		benchtime = flag.String("benchtime", "10x", "go test -benchtime value")
	)
	flag.Parse()
	if err := run(*out, *pkg, *bench, *benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out, pkg, bench, benchtime string) error {
	cmd := exec.Command("go", "test", "-run", "NONE", "-bench", bench,
		"-benchmem", "-benchtime", benchtime, pkg)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go test: %w", err)
	}
	after := parse(string(raw))
	if len(after) == 0 {
		return fmt.Errorf("no benchmark lines matched %q in %s", bench, pkg)
	}

	var t trajectory
	if prev, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(prev, &t); err != nil {
			return fmt.Errorf("parse existing %s: %w", out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	t.After = after

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false) // keep "->" in notes readable
	enc.SetIndent("", "  ")
	if err := enc.Encode(&t); err != nil {
		return err
	}
	if err := os.WriteFile(out, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("updated %s: %d after-benchmarks\n", out, len(after))
	return nil
}

// parse extracts name -> measurement from go test -benchmem output.
func parse(out string) map[string]measurement {
	res := make(map[string]measurement)
	start := 0
	for i := 0; i <= len(out); i++ {
		if i == len(out) || out[i] == '\n' {
			if m := benchLine.FindStringSubmatch(out[start:i]); m != nil {
				ns, _ := strconv.ParseFloat(m[2], 64)
				b, _ := strconv.ParseInt(m[3], 10, 64)
				a, _ := strconv.ParseInt(m[4], 10, 64)
				res[m[1]] = measurement{NsOp: ns, BOp: b, AllocsOp: a}
			}
			start = i + 1
		}
	}
	return res
}
