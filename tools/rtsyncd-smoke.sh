#!/bin/sh
# rtsyncd-smoke.sh — prove the admission-control service answers like the
# batch analyzer and actually takes the cheap paths:
#
#   1. liveness: rtsyncd starts, announces its address, serves /healthz
#   2. parity: /v1/analyze schedulability verdicts match rtanalyze's
#      per-task table for the same system and algorithm
#   3. deltas: an added task is evaluated incrementally, the identical
#      probe replays from the cache, and a committed add/remove round trip
#      restores the original system (served from the cache again)
#   4. /metrics: the exposition validates (tracecheck -metrics) and the
#      cache-hit / dirty-processor counters moved
#
# Run from anywhere: `sh tools/rtsyncd-smoke.sh` (or `make rtsyncd-smoke`).
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; kill "$daemon" 2>/dev/null || true' EXIT

go build -o "$tmp/rtsyncd" ./cmd/rtsyncd
go build -o "$tmp/rtanalyze" ./cmd/rtanalyze
go build -o "$tmp/tracecheck" ./tools/tracecheck

# --- 1: start against built-in Example 2 and wait for liveness.

"$tmp/rtsyncd" -listen 127.0.0.1:0 -algo sads -example 2 \
	2>"$tmp/daemon.stderr" &
daemon=$!
addr=""
for _ in $(seq 1 100); do
	addr=$(sed -n 's,.*admission API on http://\([^/]*\)/.*,\1,p' "$tmp/daemon.stderr")
	[ -n "$addr" ] && break
	sleep 0.1
done
[ -n "$addr" ] || { echo "rtsyncd never announced its address" >&2; exit 1; }
for _ in $(seq 1 100); do
	curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
	sleep 0.1
done
curl -fsS "http://$addr/healthz" | grep -q ok
echo "ok  rtsyncd liveness ($addr)"

# --- 2: verdict parity with batch rtanalyze.

"$tmp/rtanalyze" -algo sads -example 2 >"$tmp/batch.txt"
curl -fsS -X POST "http://$addr/v1/analyze" -d '{}' >"$tmp/analyze.json"
python3 - "$tmp/analyze.json" "$tmp/batch.txt" <<'EOF'
import json, re, sys
verdict = json.load(open(sys.argv[1]))
batch = {}
for line in open(sys.argv[2]):
    m = re.match(r'\s*(T\d+)\s.*\s(true|false)\s*$', line)
    if m:
        batch[m.group(1)] = m.group(2) == "true"
assert batch, "no per-task rows parsed from rtanalyze output"
for t in verdict["tasks"]:
    assert t["name"] in batch, f'{t["name"]} missing from batch output'
    assert t["schedulable"] == batch[t["name"]], \
        f'{t["name"]}: service={t["schedulable"]} batch={batch[t["name"]]}'
assert verdict["algo"] == "SA/DS"
EOF
echo "ok  verdict parity with rtanalyze"

# --- 3: delta paths — incremental first contact, cache on replay, cache on
# an add/remove round trip back to the original system.

probe='{"add": [{"name": "T4", "period": 40, "deadline": 40,
	"subtasks": [{"proc": 0, "exec": 1, "priority": 1}]}]}'
curl -fsS -X POST "http://$addr/v1/delta" -d "$probe" >"$tmp/d1.json"
curl -fsS -X POST "http://$addr/v1/delta" -d "$probe" >"$tmp/d2.json"
commit=$(printf '%s' "$probe" | sed 's/]}$/], "commit": true, "force": true}/')
curl -fsS -X POST "http://$addr/v1/delta" -d "$commit" >"$tmp/d3.json"
curl -fsS -X POST "http://$addr/v1/delta" \
	-d '{"remove": ["T4"], "commit": true, "force": true}' >"$tmp/d4.json"
curl -fsS "http://$addr/v1/system" >"$tmp/system.json"
python3 - "$tmp" <<'EOF'
import json, sys
tmp = sys.argv[1]
d = [json.load(open(f"{tmp}/d{i}.json")) for i in (1, 2, 3, 4)]
assert d[0]["path"] == "incremental", f'first probe path {d[0]["path"]}'
assert d[1]["path"] == "cache", f'replayed probe path {d[1]["path"]}'
assert d[2]["committed"], "forced commit did not commit"
assert d[3]["path"] == "cache", f'undo path {d[3]["path"]}'
assert d[3]["committed"], "undo did not commit"
names = [t["name"] for t in d[3]["tasks"]]
assert names == ["T1", "T2", "T3"], f"tasks after round trip: {names}"
sys_doc = json.load(open(f"{tmp}/system.json"))
assert [t["name"] for t in sys_doc["system"]["tasks"]] == ["T1", "T2", "T3"]
EOF
echo "ok  delta paths (incremental, cache, undo via cache)"

# --- 4: /metrics validates and shows the counters that prove the paths.

curl -fsS "http://$addr/metrics" >"$tmp/metrics.txt"
"$tmp/tracecheck" -metrics "$tmp/metrics.txt" >/dev/null
hits=$(awk '$1 == "rtsync_analysis_cache_hits_total" {print $2}' "$tmp/metrics.txt")
dirty=$(awk '$1 == "rtsync_analysis_dirty_proc_recomputes_total" {print $2}' "$tmp/metrics.txt")
[ "${hits:-0}" -ge 2 ] || { echo "cache hits = ${hits:-none}, want >= 2" >&2; exit 1; }
[ "${dirty:-0}" -ge 1 ] || { echo "dirty proc recomputes = ${dirty:-none}, want >= 1" >&2; exit 1; }
echo "ok  /metrics exposition (hits=$hits dirty-proc-recomputes=$dirty)"

kill "$daemon"
wait "$daemon" 2>/dev/null || true
echo "rtsyncd smoke passed"
