#!/bin/sh
# verify-results.sh — prove the result-store round trip for every committed
# figure in results/:
#
#   1. live:   rerun the figure's sweep at its committed replication with
#              -jsonl, and cmp the live stdout against the committed .txt
#   2. replay: regenerate the figure FROM the JSONL store with rtreport
#              (content hashes verified), and cmp against the committed .txt
#   3. det:    run a miniature sweep at GOMAXPROCS=1 and at the host's
#              default, and cmp the two JSONL stores byte for byte
#   4. batch:  rerun the batch-capable simulation sweep with -batch > 1
#              (crossed with GOMAXPROCS 1 and default) and cmp every store
#              against the sequential one — the batched interleaved engine
#              pass must be invisible in the output
#   5. warm:   rerun committed figures with -warm-start (crossed with
#              GOMAXPROCS 1 and default for the minis) and cmp stdout
#              against the committed .txt and the store against the cold
#              run's — warm-seeded fixed points must change no output byte
#
# Figures 14/15/16/rg-rule2/jitter all render from one avgeer-study store,
# so the store written while regenerating figure 14 replays the other four —
# the figures-as-views contract doing real work.
#
# Run from anywhere: `sh tools/verify-results.sh` (or `make verify-results`).
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/rtx" ./cmd/rtexperiments
go build -o "$tmp/rtr" ./cmd/rtreport

# live <figure> <name> <sweep flags...>: sweep with a JSONL store attached,
# stdout must match the committed results/<name>.txt.
live() {
	fig=$1
	name=$2
	shift 2
	"$tmp/rtx" -figure "$fig" "$@" -jsonl "$tmp/$name.jsonl" >"$tmp/$name.txt"
	cmp "results/$name.txt" "$tmp/$name.txt"
	echo "ok  live    $name"
}

# replay <figure> <name> <store-name>: regenerate from the store alone.
replay() {
	fig=$1
	name=$2
	store=$3
	"$tmp/rtr" -in "$tmp/$store.jsonl" -verify -figure "$fig" >"$tmp/$name.replay.txt"
	cmp "results/$name.txt" "$tmp/$name.replay.txt"
	echo "ok  replay  $name"
}

# det <figure> <sweep flags...>: miniature sweep twice — GOMAXPROCS=1 vs the
# host default — stores must be byte-identical (the ordered-commit turnstile
# at work). Then hash-verify the store: short horizons leave some tasks
# jobless, so obs layouts VARY across records — the decode path must not
# leak omitempty fields between a reused record's lines.
det() {
	fig=$1
	shift
	GOMAXPROCS=1 "$tmp/rtx" -figure "$fig" "$@" -jsonl "$tmp/det1.jsonl" >/dev/null
	"$tmp/rtx" -figure "$fig" "$@" -jsonl "$tmp/detN.jsonl" >/dev/null
	cmp "$tmp/det1.jsonl" "$tmp/detN.jsonl"
	"$tmp/rtr" -in "$tmp/det1.jsonl" -verify -list >/dev/null
	echo "ok  det     $fig"
}

# --- 1+2: committed-replication round trips (flags mirror `make experiments`)

live 12 fig12 -systems 200
replay 12 fig12 fig12

live 13 fig13 -systems 200
replay 13 fig13 fig13

live 14 fig14 -systems 50
replay 14 fig14 fig14
replay 15 fig15 fig14
replay 16 fig16 fig14
replay rg-rule2 rg-rule2 fig14
replay jitter jitter fig14

live release-jitter release-jitter -systems 20
replay release-jitter release-jitter release-jitter

live tightness tightness -systems 40
replay tightness tightness tightness

live edf edf -systems 30 -horizon-periods 10
replay edf edf edf

live exec-variation exec-variation -systems 10 -horizon-periods 10
replay exec-variation exec-variation exec-variation

live sensitivity sensitivity -systems 15 -horizon-periods 10
replay sensitivity sensitivity sensitivity

# overhead is analytical — no sweep, no store; both CLIs must print the
# committed table.
"$tmp/rtx" -figure overhead >"$tmp/overhead.txt"
cmp results/overhead.txt "$tmp/overhead.txt"
echo "ok  live    overhead"
"$tmp/rtr" -figure overhead >"$tmp/overhead.replay.txt"
cmp results/overhead.txt "$tmp/overhead.replay.txt"
echo "ok  replay  overhead"

# --- 3: parallelism determinism of the store itself (miniature sweeps)

mini="-systems 2 -nmin 2 -nmax 3 -horizon-periods 5"
det 12 $mini
det 13 $mini
det 14 $mini
det release-jitter $mini
det edf $mini
det exec-variation $mini
det tightness -systems 4
det sensitivity -systems 2 -horizon-periods 5
det locking $mini

# --- 4: batch invisibility — the avgeer study's batched engine path, crossed
# with worker parallelism, against a sequential reference store.

"$tmp/rtx" -figure 14 $mini -batch 1 -jsonl "$tmp/batchref.jsonl" >/dev/null
for b in 3 8; do
	GOMAXPROCS=1 "$tmp/rtx" -figure 14 $mini -batch $b -jsonl "$tmp/batch1x$b.jsonl" >/dev/null
	cmp "$tmp/batchref.jsonl" "$tmp/batch1x$b.jsonl"
	"$tmp/rtx" -figure 14 $mini -batch $b -jsonl "$tmp/batchNx$b.jsonl" >/dev/null
	cmp "$tmp/batchref.jsonl" "$tmp/batchNx$b.jsonl"
	echo "ok  batch   fig14 -batch $b (GOMAXPROCS 1 and default)"
done

# --- 5: warm-start invisibility — every committed figure rerun with
# warm-seeded fixed points, against the committed .txt and the cold store
# step 1 left in $tmp (the five replay-only figures render from fig14's
# store, so its cmp covers them); then a warm mini at GOMAXPROCS 1 and
# default against the cold sequential reference.

# warm <figure> <name> <sweep flags...>: the live() flags plus -warm-start.
warm() {
	fig=$1
	name=$2
	shift 2
	"$tmp/rtx" -figure "$fig" "$@" -warm-start \
		-jsonl "$tmp/$name.warm.jsonl" >"$tmp/$name.warm.txt"
	cmp "results/$name.txt" "$tmp/$name.warm.txt"
	cmp "$tmp/$name.jsonl" "$tmp/$name.warm.jsonl"
	echo "ok  warm    $name"
}

warm 12 fig12 -systems 200
warm 13 fig13 -systems 200
warm 14 fig14 -systems 50
warm release-jitter release-jitter -systems 20
warm tightness tightness -systems 40
warm edf edf -systems 30 -horizon-periods 10
warm exec-variation exec-variation -systems 10 -horizon-periods 10
warm sensitivity sensitivity -systems 15 -horizon-periods 10
"$tmp/rtx" -figure overhead -warm-start >"$tmp/overhead.warm.txt"
cmp results/overhead.txt "$tmp/overhead.warm.txt"
echo "ok  warm    overhead"

"$tmp/rtx" -figure 14 $mini -jsonl "$tmp/warmref.jsonl" >/dev/null
GOMAXPROCS=1 "$tmp/rtx" -figure 14 $mini -warm-start -jsonl "$tmp/warm1.jsonl" >/dev/null
cmp "$tmp/warmref.jsonl" "$tmp/warm1.jsonl"
"$tmp/rtx" -figure 14 $mini -warm-start -jsonl "$tmp/warmN.jsonl" >/dev/null
cmp "$tmp/warmref.jsonl" "$tmp/warmN.jsonl"
echo "ok  warm    fig14 mini (GOMAXPROCS 1 and default)"

echo "all results round-trip byte-identical"
