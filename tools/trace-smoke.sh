#!/bin/sh
# trace-smoke.sh — prove the observability layer works end to end and is
# invisible in the results:
#
#   1. zero-perturbation: a miniature sweep with -trace-pipeline produces
#      byte-identical stdout and JSONL store vs the untraced run, at
#      GOMAXPROCS 1 and the host default, sequential and -batch 3
#   2. trace validity: the emitted file is Chrome trace-event JSON whose
#      slices nest per (pid, tid) track (tracecheck -trace)
#   3. manifest: a traced -manifest run embeds a span summary
#   4. schedule export: rttrace -perfetto renders a saved schedule trace
#   5. /metrics: a sweep with -debug-addr serves Prometheus text exposition
#      that passes syntax validation (tracecheck -metrics)
#
# Run from anywhere: `sh tools/trace-smoke.sh` (or `make trace-smoke`).
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/rtx" ./cmd/rtexperiments
go build -o "$tmp/rts" ./cmd/rtsim
go build -o "$tmp/rtt" ./cmd/rttrace
go build -o "$tmp/tracecheck" ./tools/tracecheck

mini="-figure 14 -systems 2 -nmin 2 -nmax 3 -horizon-periods 5"

# --- 1+2: tracing must not perturb results, and the trace must validate.

$tmp/rtx $mini -jsonl "$tmp/ref.jsonl" >"$tmp/ref.txt"

run_traced() {
	name=$1
	shift
	"$@" $mini -jsonl "$tmp/$name.jsonl" -trace-pipeline "$tmp/$name.trace.json" >"$tmp/$name.txt"
	cmp "$tmp/ref.txt" "$tmp/$name.txt"
	cmp "$tmp/ref.jsonl" "$tmp/$name.jsonl"
	"$tmp/tracecheck" -trace "$tmp/$name.trace.json" >/dev/null
	echo "ok  traced  $name"
}

run_traced seq "$tmp/rtx"
run_traced seq1 env GOMAXPROCS=1 "$tmp/rtx"
run_traced par env GOMAXPROCS=4 "$tmp/rtx"
run_traced batch "$tmp/rtx" -batch 3
run_traced batchpar env GOMAXPROCS=4 "$tmp/rtx" -batch 3

# --- 3: the manifest of a traced run carries the span summary.

$tmp/rtx $mini -trace-pipeline "$tmp/man.trace.json" \
	-manifest "$tmp/man.json" >/dev/null
grep -q '"spans"' "$tmp/man.json"
echo "ok  manifest span summary"

# --- 4: rtsim pipeline trace and rttrace schedule export both validate.

$tmp/rts -protocol all -example 2 -trace-pipeline "$tmp/rtsim.trace.json" >/dev/null
"$tmp/tracecheck" -trace "$tmp/rtsim.trace.json" >/dev/null
echo "ok  rtsim   -trace-pipeline"

$tmp/rts -protocol rg -example 2 -horizon 200 -trace-out "$tmp/sched.json" >/dev/null
$tmp/rtt -perfetto "$tmp/sched.perfetto.json" "$tmp/sched.json" >/dev/null
"$tmp/tracecheck" -trace "$tmp/sched.perfetto.json" >/dev/null
echo "ok  rttrace -perfetto"

# --- 5: /metrics on the debug endpoint speaks valid exposition format.
# The endpoint announces its (ephemeral) address on stderr; poll until the
# sweep has served it, then validate the scrape.

$tmp/rtx -figure 14 -systems 30 -debug-addr 127.0.0.1:0 \
	-jsonl "$tmp/met.jsonl" >/dev/null 2>"$tmp/met.stderr" &
sweep=$!
addr=""
for _ in $(seq 1 100); do
	addr=$(sed -n 's,.*debug endpoint on http://\(.*\)/debug/.*,\1,p' "$tmp/met.stderr")
	[ -n "$addr" ] && break
	sleep 0.1
done
[ -n "$addr" ] || { echo "debug endpoint never announced" >&2; exit 1; }
ok=0
for _ in $(seq 1 100); do
	if curl -fsS "http://$addr/metrics" >"$tmp/metrics.txt" 2>/dev/null &&
		grep -q rtsync_sweep_units_done "$tmp/metrics.txt"; then
		ok=1
		break
	fi
	sleep 0.1
done
kill "$sweep" 2>/dev/null || true
wait "$sweep" 2>/dev/null || true
[ "$ok" = 1 ] || { echo "never scraped /metrics from $addr" >&2; exit 1; }
"$tmp/tracecheck" -metrics "$tmp/metrics.txt" >/dev/null
echo "ok  /metrics exposition"

echo "trace smoke passed"
