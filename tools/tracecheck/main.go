// Command tracecheck validates the observability outputs the rtsync CLIs
// emit, for CI smoke tests and local sanity checks:
//
//	tracecheck -trace out.json     # Chrome trace-event JSON (Perfetto)
//	tracecheck -metrics met.txt    # Prometheus text exposition format
//
// The trace check parses the JSON, verifies every event carries a known
// phase with sane timestamps, and replays each (pid, tid) track's complete
// slices against a stack to prove they nest like a call stack — the
// invariant Perfetto's UI needs to render spans correctly. The metrics
// check validates the 0.0.4 exposition syntax line by line: every sample
// parses, every sample's family has a preceding # TYPE, and every
// histogram family ends its bucket series at +Inf with _sum and _count.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"strings"
)

func main() {
	trace := flag.String("trace", "", "validate this Chrome trace-event JSON file")
	metrics := flag.String("metrics", "", "validate this Prometheus text exposition file")
	flag.Parse()
	if *trace == "" && *metrics == "" {
		fmt.Fprintln(os.Stderr, "usage: tracecheck -trace out.json and/or -metrics met.txt")
		os.Exit(2)
	}
	ok := true
	if *trace != "" {
		if err := checkTrace(*trace); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", *trace, err)
			ok = false
		} else {
			fmt.Printf("ok  trace   %s\n", *trace)
		}
	}
	if *metrics != "" {
		if err := checkMetrics(*metrics); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", *metrics, err)
			ok = false
		} else {
			fmt.Printf("ok  metrics %s\n", *metrics)
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// traceEvent is the subset of the trace-event schema the checks read.
type traceEvent struct {
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Name string  `json:"name"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
}

type track struct{ pid, tid int }

// checkTrace parses the file and verifies event sanity plus per-track slice
// nesting: in emission order, every slice must either nest inside the open
// slice on its track or start at/after its end.
func checkTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("no traceEvents")
	}
	// Open-slice stack per track: [start, end) intervals in integral
	// nanoseconds — the exporters emit microseconds with exactly three
	// decimals, so scaling by 1000 makes the comparisons exact instead of
	// inheriting float64 addition noise.
	type span struct{ start, end int64 }
	stacks := make(map[track][]span)
	slices, meta := 0, 0
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "i", "C":
			// Instants and counters carry no duration; nothing to nest.
		case "X":
			slices++
			if e.Dur < 0 {
				return fmt.Errorf("event %d (%q): negative duration %v", i, e.Name, e.Dur)
			}
			k := track{e.Pid, e.Tid}
			st := stacks[k]
			ts := int64(math.Round(e.TS * 1000))
			end := ts + int64(math.Round(e.Dur*1000))
			// Pop slices that ended before this one starts.
			for len(st) > 0 && ts >= st[len(st)-1].end {
				st = st[:len(st)-1]
			}
			if len(st) > 0 {
				open := st[len(st)-1]
				if end > open.end {
					return fmt.Errorf("event %d (%q) on pid %d tid %d: slice [%dns,%dns) overlaps enclosing slice ending at %dns without nesting",
						i, e.Name, e.Pid, e.Tid, ts, end, open.end)
				}
				if ts < open.start {
					return fmt.Errorf("event %d (%q) on pid %d tid %d: slice starts at %dns before enclosing slice's %dns (events not sorted)",
						i, e.Name, e.Pid, e.Tid, ts, open.start)
				}
			}
			stacks[k] = append(st, span{ts, end})
		default:
			return fmt.Errorf("event %d (%q): unknown phase %q", i, e.Name, e.Ph)
		}
	}
	if meta == 0 {
		return fmt.Errorf("no metadata events (process/thread names missing)")
	}
	fmt.Printf("    %d events, %d slices, %d tracks\n", len(doc.TraceEvents), slices, len(stacks))
	return nil
}

// promSample matches one exposition sample line: name, optional labels,
// and a number.
var promSample = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [-+]?([0-9.eE+-]+|Inf|NaN)$`)

// checkMetrics validates the exposition text line by line.
func checkMetrics(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	types := map[string]string{}
	histInf := map[string]bool{}
	histSum := map[string]bool{}
	histCount := map[string]bool{}
	samples := 0
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return fmt.Errorf("line %d: malformed TYPE: %q", lineNo, line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
			}
			if _, dup := types[fields[2]]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, fields[2])
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			return fmt.Errorf("line %d: unknown comment form: %q", lineNo, line)
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample: %q", lineNo, line)
		}
		samples++
		name := m[1]
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name && types[trimmed] == "histogram" {
				base = trimmed
				switch suf {
				case "_bucket":
					if strings.Contains(line, `le="+Inf"`) {
						histInf[base] = true
					}
				case "_sum":
					histSum[base] = true
				case "_count":
					histCount[base] = true
				}
			}
		}
		if _, ok := types[base]; !ok {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples")
	}
	for name, typ := range types {
		if typ != "histogram" {
			continue
		}
		if !histInf[name] {
			return fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", name)
		}
		if !histSum[name] || !histCount[name] {
			return fmt.Errorf("histogram %s is missing _sum or _count", name)
		}
	}
	fmt.Printf("    %d samples, %d families\n", samples, len(types))
	return nil
}
