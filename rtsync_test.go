package rtsync_test

import (
	"errors"
	"strings"
	"testing"

	"rtsync"
	"rtsync/internal/sim"
)

// TestQuickstartWorkflow drives the README's end-to-end session: build,
// analyze, extract bounds, simulate each protocol, render.
func TestQuickstartWorkflow(t *testing.T) {
	sys := rtsync.Example2()

	pm, err := rtsync.AnalyzePM(sys)
	if err != nil {
		t.Fatal(err)
	}
	if pm.TaskEER[2] != 5 {
		t.Errorf("SA/PM EER(T3) = %v, want 5", pm.TaskEER[2])
	}
	ds, err := rtsync.AnalyzeDS(sys)
	if err != nil {
		t.Fatal(err)
	}
	if ds.TaskEER[2] != 8 {
		t.Errorf("SA/DS EER(T3) = %v, want 8", ds.TaskEER[2])
	}

	bounds, err := rtsync.BoundsFrom(pm)
	if err != nil {
		t.Fatal(err)
	}
	for _, protocol := range []rtsync.Protocol{
		rtsync.NewDS(), rtsync.NewPM(bounds), rtsync.NewMPM(bounds),
		rtsync.NewRG(), rtsync.NewRGRule1Only(),
	} {
		out, err := rtsync.Simulate(sys, rtsync.SimConfig{
			Protocol: protocol,
			Horizon:  120,
			Trace:    true,
		})
		if err != nil {
			t.Fatalf("%s: %v", protocol.Name(), err)
		}
		if problems := rtsync.ValidateTrace(out.Trace, sim.ValidateOptions{CheckPrecedence: true}); len(problems) > 0 {
			t.Fatalf("%s: %v", protocol.Name(), problems)
		}
		chart := rtsync.RenderGantt(out.Trace, rtsync.GanttOptions{To: 12})
		if !strings.Contains(chart, "P1:") {
			t.Errorf("%s: gantt malformed:\n%s", protocol.Name(), chart)
		}
	}
}

func TestBuilderThroughFacade(t *testing.T) {
	b := rtsync.NewBuilder()
	cpu := b.AddProcessor("cpu")
	link := b.AddLink("bus")
	b.AddTask("job", 100, 0).Subtask(cpu, 10, 0).Subtask(link, 5, 0).Done()
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := rtsync.AssignPriorities(sys, rtsync.ProportionalDeadline); err != nil {
		t.Fatal(err)
	}
	res, err := rtsync.AnalyzePM(sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.TaskEER[0] != 15 {
		t.Errorf("EER = %v, want 15 (no interference)", res.TaskEER[0])
	}
	phases, err := rtsync.PMPhases(sys, res)
	if err != nil {
		t.Fatal(err)
	}
	if phases[rtsync.SubtaskID{Task: 0, Sub: 1}] != 10 {
		t.Errorf("f(1,2) = %v, want 10", phases[rtsync.SubtaskID{Task: 0, Sub: 1}])
	}
}

func TestBoundsFromInfinite(t *testing.T) {
	b := rtsync.NewBuilder()
	p := b.AddProcessor("P")
	q := b.AddProcessor("Q")
	b.AddTask("A", 10, 0).Subtask(p, 6, 2).Subtask(q, 1, 1).Done()
	b.AddTask("B", 10, 0).Subtask(p, 6, 1).Subtask(q, 1, 2).Done()
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := rtsync.AnalyzePM(sys)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rtsync.BoundsFrom(res)
	if err == nil {
		t.Fatal("BoundsFrom accepted infinite bounds")
	}
	var ibe *rtsync.InfiniteBoundError
	if !errors.As(err, &ibe) {
		t.Errorf("error is not an InfiniteBoundError: %v", err)
	}
	if !strings.Contains(err.Error(), "infinite") {
		t.Errorf("error text: %v", err)
	}
}

func TestWorkloadThroughFacade(t *testing.T) {
	cfg := rtsync.DefaultWorkloadConfig(3, 0.6)
	cfg.Seed = 12
	sys, err := rtsync.GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Tasks) != 12 || len(sys.Procs) != 4 {
		t.Errorf("workload shape wrong: %v", sys)
	}
	if got := len(rtsync.PaperConfigurations()); got != 35 {
		t.Errorf("PaperConfigurations = %d, want 35", got)
	}
}

func TestExperimentsThroughFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	p := rtsync.ExperimentParams{
		Configs:          []rtsync.WorkloadConfig{rtsync.DefaultWorkloadConfig(2, 0.5)},
		SystemsPerConfig: 2,
		Seed:             3,
		HorizonPeriods:   5,
	}
	if _, err := rtsync.Fig12FailureRate(p); err != nil {
		t.Fatal(err)
	}
	if _, err := rtsync.Fig13BoundRatio(p); err != nil {
		t.Fatal(err)
	}
	if _, err := rtsync.AvgEERStudy(p); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadThroughFacade(t *testing.T) {
	sys := rtsync.Example2()
	path := t.TempDir() + "/sys.json"
	if err := sys.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := rtsync.LoadSystem(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != sys.String() {
		t.Error("round trip mismatch")
	}
}

func TestDefaultAnalysisOptions(t *testing.T) {
	opts := rtsync.DefaultAnalysisOptions()
	if opts.FailureFactor != 300 {
		t.Errorf("FailureFactor = %d, want 300", opts.FailureFactor)
	}
	res, err := rtsync.AnalyzeDSWith(rtsync.Example2(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TaskEER[2] != 8 {
		t.Errorf("EER(T3) = %v", res.TaskEER[2])
	}
	res2, err := rtsync.AnalyzePMWith(rtsync.Example2(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.TaskEER[2] != 5 {
		t.Errorf("PM EER(T3) = %v", res2.TaskEER[2])
	}
}
