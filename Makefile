# Convenience targets for the rtsync reproduction.

GO ?= go

.PHONY: all build test test-short bench bench-analysis bench-experiments bench-sim bench-check bench-regress fuzz-smoke vet fmt cover experiments verify-results trace-smoke rtsyncd-smoke examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l . && test -z "$$(gofmt -l .)"

test: build vet
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -run NONE -bench=. -benchmem ./...

# Rerun the analysis hot-path benchmarks and rewrite the "after" section of
# BENCH_analysis.json in place (description, "before" and notes survive).
bench-analysis:
	$(GO) run ./tools/benchjson -out BENCH_analysis.json \
		-pkg ./internal/analysis -bench 'BenchmarkAnalyze|BenchmarkIncremental' -benchtime 10x

# The experiments pipeline benchmarks plus the record-store path:
# BenchmarkSweepJSONL - BenchmarkSweep is the full result-store overhead per
# 16-system sweep, and BenchmarkRecordEncode/Decode isolate the per-record
# canonical-JSON + content-hash cost.
bench-experiments:
	$(GO) run ./tools/benchjson -out BENCH_experiments.json \
		-pkg ./internal/experiments,./internal/record \
		-bench 'BenchmarkSweep|BenchmarkRecord' -benchtime 10x

# Engine hot-path benchmarks: the end-to-end BenchmarkSimulate* figures from
# the root package plus the steady-state engine and queue micro-benchmarks
# from internal/sim, merged into one trajectory. These run with
# observability disabled (the engines' Config.Stats is nil, the zero-cost
# path); TestSimStatsZeroAllocs separately proves that attaching an
# obs.SimStats adds zero allocations per event, so the numbers here also
# describe instrumented runs. BenchmarkSpanRecord and BenchmarkPromText
# price the tracing-enabled extras: one span append and one full /metrics
# exposition render.
bench-sim:
	$(GO) run ./tools/benchjson -out BENCH_sim.json \
		-pkg .,./internal/sim,./internal/obs \
		-bench 'BenchmarkSimulate|BenchmarkEngine|BenchmarkEventQueue|BenchmarkReadyQueue|BenchmarkSpanRecord|BenchmarkPromText' \
		-benchtime 1s

# Verify every benchmark named in a BENCH_*.json baseline still exists
# (one 1x iteration per benchmark, no file rewrite) — the CI bench smoke.
bench-check:
	$(GO) run ./tools/benchjson -check -out BENCH_sim.json \
		-pkg .,./internal/sim,./internal/obs \
		-bench 'BenchmarkSimulate|BenchmarkEngine|BenchmarkEventQueue|BenchmarkReadyQueue|BenchmarkSpanRecord|BenchmarkPromText' \
		-benchtime 1x
	$(GO) run ./tools/benchjson -check -out BENCH_analysis.json \
		-pkg ./internal/analysis -bench 'BenchmarkAnalyze|BenchmarkIncremental' -benchtime 1x
	$(GO) run ./tools/benchjson -check -out BENCH_experiments.json \
		-pkg ./internal/experiments,./internal/record \
		-bench 'BenchmarkSweep|BenchmarkRecord' -benchtime 1x

# Regression gate: rerun each trajectory's benchmarks at the SAME benchtime
# its baseline was captured with (a 1x run measures cold-start, not steady
# state) and fail when ns/op or ns/event slips more than MAX_REGRESS percent
# or allocs/op more than MAX_REGRESS_ALLOCS percent (+2 allocs absolute
# slack) against the committed "after" numbers. Benchmarks are noisy across
# machines, so the default thresholds are generous; tighten them on a quiet
# box. An INTENTIONAL regression re-baselines with
#
#	make bench-regress UPDATE=1
#
# which accepts the new numbers and rewrites the BENCH_*.json after
# sections in place (benchjson -update).
MAX_REGRESS ?= 30
MAX_REGRESS_ALLOCS ?= 10
UPDATE_FLAG = $(if $(UPDATE),-update,)
bench-regress:
	$(GO) run ./tools/benchjson -check $(UPDATE_FLAG) \
		-max-regress $(MAX_REGRESS) -max-regress-allocs $(MAX_REGRESS_ALLOCS) \
		-out BENCH_sim.json -pkg .,./internal/sim,./internal/obs \
		-bench 'BenchmarkSimulate|BenchmarkEngine|BenchmarkEventQueue|BenchmarkReadyQueue|BenchmarkSpanRecord|BenchmarkPromText' \
		-benchtime 1s
	$(GO) run ./tools/benchjson -check $(UPDATE_FLAG) \
		-max-regress $(MAX_REGRESS) -max-regress-allocs $(MAX_REGRESS_ALLOCS) \
		-out BENCH_analysis.json -pkg ./internal/analysis \
		-bench 'BenchmarkAnalyze|BenchmarkIncremental' -benchtime 10x
	$(GO) run ./tools/benchjson -check $(UPDATE_FLAG) \
		-max-regress $(MAX_REGRESS) -max-regress-allocs $(MAX_REGRESS_ALLOCS) \
		-out BENCH_experiments.json -pkg ./internal/experiments,./internal/record \
		-bench 'BenchmarkSweep|BenchmarkRecord' -benchtime 10x

# Differential-fuzz the engine's equivalence claims for 30s each — the
# timing wheel against the reference heap, the locking arbiters, and the
# batched interleaved pass against sequential runs. What CI's fuzz smoke
# runs; crank -fuzztime locally for a deeper soak.
fuzz-smoke:
	$(GO) test -run NONE -fuzz FuzzQueueEquivalence -fuzztime 30s ./internal/sim
	$(GO) test -run NONE -fuzz FuzzLockingEquivalence -fuzztime 30s ./internal/sim
	$(GO) test -run NONE -fuzz FuzzBatchEquivalence -fuzztime 30s ./internal/sim

cover:
	$(GO) test -cover ./...

# Regenerate every paper figure + ablation at moderate replication into
# results/ (about 10 minutes on a laptop). Each sweep also streams its
# CellRecord store to results/<name>.jsonl; `go run ./cmd/rtreport -in
# results/<name>.jsonl` regenerates the figure from the store alone, and
# tools/verify-results.sh proves that round trip byte-identical.
experiments: build
	mkdir -p results
	$(GO) run ./cmd/rtexperiments -figure 12 -systems 200 -jsonl results/fig12.jsonl > results/fig12.txt
	$(GO) run ./cmd/rtexperiments -figure 13 -systems 200 -jsonl results/fig13.jsonl > results/fig13.txt
	$(GO) run ./cmd/rtexperiments -figure 14 -systems 50 -jsonl results/fig14.jsonl > results/fig14.txt
	$(GO) run ./cmd/rtexperiments -figure 15 -systems 50 -jsonl results/fig15.jsonl > results/fig15.txt
	$(GO) run ./cmd/rtexperiments -figure 16 -systems 50 -jsonl results/fig16.jsonl > results/fig16.txt
	$(GO) run ./cmd/rtexperiments -figure rg-rule2 -systems 50 -jsonl results/rg-rule2.jsonl > results/rg-rule2.txt
	$(GO) run ./cmd/rtexperiments -figure jitter -systems 50 -jsonl results/jitter.jsonl > results/jitter.txt
	$(GO) run ./cmd/rtexperiments -figure release-jitter -systems 20 -jsonl results/release-jitter.jsonl > results/release-jitter.txt
	$(GO) run ./cmd/rtexperiments -figure tightness -systems 40 -jsonl results/tightness.jsonl > results/tightness.txt
	$(GO) run ./cmd/rtexperiments -figure edf -systems 30 -horizon-periods 10 -jsonl results/edf.jsonl > results/edf.txt
	$(GO) run ./cmd/rtexperiments -figure exec-variation -systems 10 -horizon-periods 10 -jsonl results/exec-variation.jsonl > results/exec-variation.txt
	$(GO) run ./cmd/rtexperiments -figure sensitivity -systems 15 -horizon-periods 10 -jsonl results/sensitivity.jsonl > results/sensitivity.txt
	$(GO) run ./cmd/rtexperiments -figure overhead > results/overhead.txt

# Prove every committed results/*.txt regenerates byte-identically — live
# sweep AND rtreport replay from the JSONL store — plus store determinism
# across GOMAXPROCS settings. What CI runs.
verify-results:
	sh tools/verify-results.sh

# Smoke the observability layer: -trace-pipeline must not perturb results
# (stdout + JSONL byte-identical across GOMAXPROCS and -batch), emitted
# traces must be valid nesting Chrome trace-event JSON, and /metrics must
# speak Prometheus exposition format. What CI runs.
trace-smoke:
	sh tools/trace-smoke.sh

# Smoke the rtsyncd admission service: start it, check verdict parity with
# batch rtanalyze, drive add/modify/remove deltas through the incremental
# and cache paths, and validate the /metrics exposition. What CI runs.
rtsyncd-smoke:
	sh tools/rtsyncd-smoke.sh

examples: build
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/example2
	$(GO) run ./examples/monitor
	$(GO) run ./examples/jitterstudy
	$(GO) run ./examples/sensorhub
	$(GO) run ./examples/edfstudy
	$(GO) run ./examples/fleet -systems 3

# The experiments target writes results/*.txt and results/*.jsonl record
# stores; clean removes those plus CSV exports, run manifests
# (results/*.json, written by the CLIs' -manifest flag), profiling and
# test-binary droppings. The golden fixtures under internal/*/testdata
# are committed INPUTS — regenerated only by a deliberate `go test
# ./internal/analysis -run Golden -update` (CI never passes -update) — so
# clean must never reach into testdata.
clean:
	rm -f results/*.txt results/*.jsonl results/*.csv results/*.json *.prof *.test cpu.out mem.out
