# Convenience targets for the rtsync reproduction.

GO ?= go

.PHONY: all build test test-short bench bench-analysis bench-experiments bench-sim bench-check fuzz-smoke vet fmt cover experiments examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l . && test -z "$$(gofmt -l .)"

test: build vet
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -run NONE -bench=. -benchmem ./...

# Rerun the analysis hot-path benchmarks and rewrite the "after" section of
# BENCH_analysis.json in place (description, "before" and notes survive).
bench-analysis:
	$(GO) run ./tools/benchjson -out BENCH_analysis.json \
		-pkg ./internal/analysis -bench BenchmarkAnalyze -benchtime 10x

bench-experiments:
	$(GO) run ./tools/benchjson -out BENCH_experiments.json \
		-pkg ./internal/experiments -bench BenchmarkSweep -benchtime 10x

# Engine hot-path benchmarks: the end-to-end BenchmarkSimulate* figures from
# the root package plus the steady-state engine and queue micro-benchmarks
# from internal/sim, merged into one trajectory. These run with
# observability disabled (the engines' Config.Stats is nil, the zero-cost
# path); TestSimStatsZeroAllocs separately proves that attaching an
# obs.SimStats adds zero allocations per event, so the numbers here also
# describe instrumented runs.
bench-sim:
	$(GO) run ./tools/benchjson -out BENCH_sim.json \
		-pkg .,./internal/sim \
		-bench 'BenchmarkSimulate|BenchmarkEngine|BenchmarkEventQueue|BenchmarkReadyQueue' \
		-benchtime 1s

# Verify every benchmark named in a BENCH_*.json baseline still exists
# (one 1x iteration per benchmark, no file rewrite) — the CI bench smoke.
bench-check:
	$(GO) run ./tools/benchjson -check -out BENCH_sim.json \
		-pkg .,./internal/sim \
		-bench 'BenchmarkSimulate|BenchmarkEngine|BenchmarkEventQueue|BenchmarkReadyQueue' \
		-benchtime 1x
	$(GO) run ./tools/benchjson -check -out BENCH_analysis.json \
		-pkg ./internal/analysis -bench BenchmarkAnalyze -benchtime 1x
	$(GO) run ./tools/benchjson -check -out BENCH_experiments.json \
		-pkg ./internal/experiments -bench BenchmarkSweep -benchtime 1x

# Differential-fuzz the timing wheel against the reference heap for 30s —
# what CI's fuzz smoke runs; crank -fuzztime locally for a deeper soak.
fuzz-smoke:
	$(GO) test -run NONE -fuzz FuzzQueueEquivalence -fuzztime 30s ./internal/sim
	$(GO) test -run NONE -fuzz FuzzLockingEquivalence -fuzztime 30s ./internal/sim

cover:
	$(GO) test -cover ./...

# Regenerate every paper figure + ablation at moderate replication into
# results/ (about 10 minutes on a laptop).
experiments: build
	mkdir -p results
	$(GO) run ./cmd/rtexperiments -figure 12 -systems 200 > results/fig12.txt
	$(GO) run ./cmd/rtexperiments -figure 13 -systems 200 > results/fig13.txt
	$(GO) run ./cmd/rtexperiments -figure 14 -systems 50 > results/fig14.txt
	$(GO) run ./cmd/rtexperiments -figure 15 -systems 50 > results/fig15.txt
	$(GO) run ./cmd/rtexperiments -figure 16 -systems 50 > results/fig16.txt
	$(GO) run ./cmd/rtexperiments -figure rg-rule2 -systems 50 > results/rg-rule2.txt
	$(GO) run ./cmd/rtexperiments -figure jitter -systems 50 > results/jitter.txt
	$(GO) run ./cmd/rtexperiments -figure release-jitter -systems 20 > results/release-jitter.txt
	$(GO) run ./cmd/rtexperiments -figure tightness -systems 40 > results/tightness.txt
	$(GO) run ./cmd/rtexperiments -figure edf -systems 30 -horizon-periods 10 > results/edf.txt
	$(GO) run ./cmd/rtexperiments -figure exec-variation -systems 10 -horizon-periods 10 > results/exec-variation.txt
	$(GO) run ./cmd/rtexperiments -figure sensitivity -systems 15 -horizon-periods 10 > results/sensitivity.txt
	$(GO) run ./cmd/rtexperiments -figure overhead > results/overhead.txt

examples: build
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/example2
	$(GO) run ./examples/monitor
	$(GO) run ./examples/jitterstudy
	$(GO) run ./examples/sensorhub
	$(GO) run ./examples/edfstudy
	$(GO) run ./examples/fleet -systems 3

# The experiments target writes results/*.txt; clean removes those plus run
# manifests (results/*.json, written by the CLIs' -manifest flag), profiling
# and test-binary droppings. The golden fixtures under internal/*/testdata
# are committed INPUTS — regenerated only by a deliberate `go test
# ./internal/analysis -run Golden -update` (CI never passes -update) — so
# clean must never reach into testdata.
clean:
	rm -f results/*.txt results/*.csv results/*.json *.prof *.test cpu.out mem.out
