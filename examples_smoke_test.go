package rtsync_test

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun builds and runs every example binary end-to-end and
// checks a fingerprint of its output, so the examples stay working
// deliverables rather than drifting documentation.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples spawn the go tool")
	}
	cases := []struct {
		dir  string
		args []string
		want []string
	}{
		{"quickstart", nil, []string{"Example 2 — protocols compared", "RG"}},
		{"example2", nil, []string{"Figure 3", "Figure 5", "Figure 7", "legend:"}},
		{"monitor", nil, []string{"monitor task over a shared link", "CAN-style"}},
		{"jitterstudy", nil, []string{"output jitter per task", "PM bound"}},
		{"sensorhub", nil, []string{"sensor hub", "i2c", "trace validator"}},
		{"edfstudy", nil, []string{"fixed priority vs EDF", "EDF schedulable: true"}},
		{"fleet", []string{"-systems", "2"}, []string{"average-EER ratios", "PM/DS"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			args := append([]string{"run", "./examples/" + tc.dir}, tc.args...)
			cmd := exec.Command("go", args...)
			done := make(chan struct{})
			var out []byte
			var err error
			go func() {
				defer close(done)
				out, err = cmd.CombinedOutput()
			}()
			select {
			case <-done:
			case <-time.After(3 * time.Minute):
				_ = cmd.Process.Kill()
				t.Fatalf("example %s timed out", tc.dir)
			}
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", tc.dir, err, out)
			}
			text := string(out)
			for _, want := range tc.want {
				if !strings.Contains(strings.ToLower(text), strings.ToLower(want)) {
					t.Errorf("example %s output missing %q:\n%s", tc.dir, want, text)
				}
			}
		})
	}
}
