module rtsync

go 1.22
